"""GPU memory model (Figure 4 and the memory column of Table V)."""

from __future__ import annotations

import numpy as np

from repro.hardware.gpu import GiB, GPUSpec
from repro.hardware.layout import KVCacheProfile, LayoutKind
from repro.model.config import ModelSpec
from repro.quant.dtypes import BitWidth

#: Bytes of quantization metadata per (token, head, tensor) group: one FP16
#: scale plus one FP16 zero point.
_METADATA_BYTES_PER_GROUP = 4

#: Fraction of the weight footprint reserved for activations, workspace and
#: framework buffers.
_ACTIVATION_OVERHEAD_FRACTION = 0.06

#: Extra fragmentation/bookkeeping overhead of the unpacked interleaved
#: layout (per-chunk index tables, allocator padding).
_UNPACKED_FRAGMENTATION = 0.15


def _metadata_bytes_per_token(spec: ModelSpec, quantized_fraction: float) -> float:
    """Scale/zero-point bytes per token for the quantized share of the cache."""
    groups_per_token = 2 * spec.n_layers * spec.n_kv_heads  # K and V, one group per head
    return quantized_fraction * groups_per_token * _METADATA_BYTES_PER_GROUP


def kv_cache_bytes_per_token(spec: ModelSpec, profile: KVCacheProfile) -> float:
    """Average stored bytes per context token under a method's layout."""
    elements = spec.kv_elements_per_token()
    if profile.layout is LayoutKind.UNPACKED_MIXED:
        # Interleaved precisions cannot be bit-packed: every element occupies
        # a full FP16-wide slot, quantization metadata is still stored, and
        # fragmentation/bookkeeping overhead is added on top.
        payload = elements * int(BitWidth.FP16) / 8
        metadata = _metadata_bytes_per_token(spec, profile.quantized_fraction)
        return (payload + metadata) * (1.0 + _UNPACKED_FRAGMENTATION)

    payload = elements * profile.mean_bits / 8
    metadata = _metadata_bytes_per_token(spec, profile.quantized_fraction)
    if profile.layout is LayoutKind.SPARSE_OUTLIER:
        # Sparse FP16 outliers need an index per outlier token.
        outlier_fraction = profile.bit_fractions.get(BitWidth.FP16, 0.0)
        metadata += outlier_fraction * spec.n_layers * spec.n_kv_heads * 4
    return payload + metadata


def analytic_context_kv_bytes(
    token_bits: np.ndarray,
    *,
    n_layers: int,
    n_kv_heads: int,
    head_dim: int,
) -> int:
    """Analytic estimate of a context's KV-cache bytes from its plan.

    Mirrors the Figure-4 conventions — bit-packed payload plus one FP16
    scale/zero-point pair per ``(token, head, tensor, layer)`` group for the
    quantized tokens — but for an *actual* request's per-token bitwidths and
    the executed simulation model's geometry, so it can sit next to the
    measured pool bytes of the same request.  What it cannot see, by
    construction, is allocator reality: page-granularity fragmentation and
    shared (per-channel / codebook) metadata.
    """
    token_bits = np.asarray(token_bits, dtype=np.int64)
    elements_per_token = 2 * n_layers * n_kv_heads * head_dim
    payload_bits = int(np.sum(token_bits * elements_per_token))
    payload = -(-payload_bits // 8)  # bit-packed, rounded up once
    n_quantized = int(np.sum(token_bits != int(BitWidth.FP16)))
    metadata = (
        n_quantized * 2 * n_layers * n_kv_heads * _METADATA_BYTES_PER_GROUP
    )
    return payload + metadata


def kv_cache_bytes(
    spec: ModelSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
) -> float:
    """KV-cache bytes of one request: quantized context plus FP16 output tokens."""
    if context_len < 0 or output_len < 0:
        raise ValueError("context_len and output_len must be >= 0")
    context_bytes = context_len * kv_cache_bytes_per_token(spec, profile)
    output_bytes = output_len * spec.kv_bytes_per_token(BitWidth.FP16)
    return context_bytes + output_bytes


def gpu_memory_bytes(
    spec: ModelSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
    batch_size: int = 1,
) -> float:
    """Total GPU memory of serving ``batch_size`` requests."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be > 0, got {batch_size}")
    weights = spec.weight_bytes()
    activations = _ACTIVATION_OVERHEAD_FRACTION * weights
    kv_total = batch_size * kv_cache_bytes(
        spec, profile, context_len, output_len=output_len
    )
    return weights + activations + kv_total


def gpu_memory_gb(
    spec: ModelSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
    batch_size: int = 1,
) -> float:
    """Same as :func:`gpu_memory_bytes` but in GiB."""
    return gpu_memory_bytes(
        spec, profile, context_len, output_len=output_len, batch_size=batch_size
    ) / GiB


def fits_in_memory(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
    batch_size: int = 1,
) -> bool:
    """Whether the working set fits in the GPU's HBM (no OOM)."""
    required = gpu_memory_bytes(
        spec, profile, context_len, output_len=output_len, batch_size=batch_size
    )
    return required <= gpu.memory_bytes

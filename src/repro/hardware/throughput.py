"""Batched decode throughput model (Figure 6)."""

from __future__ import annotations

from typing import Sequence

from repro.hardware.gpu import GPUSpec
from repro.hardware.latency import (
    search_fixed_seconds,
    search_latency_seconds,
    tpot_seconds,
)
from repro.hardware.layout import KVCacheProfile
from repro.hardware.memory import fits_in_memory
from repro.model.config import ModelSpec


def max_batch_size(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
    limit: int = 4096,
) -> int:
    """Largest batch size that fits in GPU memory (0 if even batch 1 OOMs)."""
    low, high = 0, limit
    while low < high:
        mid = (low + high + 1) // 2
        if fits_in_memory(
            spec, gpu, profile, context_len, output_len=output_len, batch_size=mid
        ):
            low = mid
        else:
            high = mid - 1
    return low


def throughput_tokens_per_second(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    batch_size: int,
    *,
    output_len: int = 128,
) -> float | None:
    """Generation throughput for a batch, or ``None`` on out-of-memory.

    A batch of ``batch_size`` requests each produces ``output_len`` tokens;
    the total time is the quantization-search latency (a fixed per-batch
    pipeline cost plus a per-request marginal cost) followed by
    ``output_len`` decode steps over the batch.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be > 0, got {batch_size}")
    if not fits_in_memory(
        spec, gpu, profile, context_len, output_len=output_len, batch_size=batch_size
    ):
        return None
    step = tpot_seconds(
        spec,
        gpu,
        profile,
        context_len,
        output_len=output_len,
        batch_size=batch_size,
        include_search=False,
    )
    search_total = search_fixed_seconds(profile) + batch_size * search_latency_seconds(
        profile, spec, context_len
    )
    total_time = search_total + output_len * step
    return batch_size * output_len / total_time


def throughput_curve(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    batch_sizes: Sequence[int],
    *,
    output_len: int = 128,
) -> list[float | None]:
    """Throughput at each batch size (``None`` marks the OOM region)."""
    return [
        throughput_tokens_per_second(
            spec, gpu, profile, context_len, batch, output_len=output_len
        )
        for batch in batch_sizes
    ]

"""Analytic GPU cost model.

The paper's efficiency results (GPU memory in Figure 4, time-per-output-token
in Figure 5, throughput/OOM behaviour in Figure 6 and the ablation rows of
Table V) are measured on an NVIDIA A800.  Offline, those quantities are
reproduced with an explicit first-principles cost model:

* **memory** — model weights + KV-cache bytes under the method's storage
  layout (packed contiguous precision groups, sparse-outlier, or the
  unpacked interleaved layout a non-reordered mixed-precision cache forces),
* **latency (TPOT)** — HBM traffic for weights and KV cache per decode step
  (with a framework reuse factor for unfused attention), dequantization
  overhead, cache-line misalignment penalties for interleaved layouts, and
  compute time,
* **throughput** — batched decode rate including the per-request
  quantization-search latency and out-of-memory cut-offs.

Absolute numbers are not expected to match the paper's testbed; the
*orderings and crossovers* are (see EXPERIMENTS.md).
"""

from repro.hardware.gpu import A100_40GB, A800_80GB, GPUSpec
from repro.hardware.layout import KVCacheProfile, LayoutKind
from repro.hardware.memory import (
    gpu_memory_bytes,
    gpu_memory_gb,
    kv_cache_bytes,
    kv_cache_bytes_per_token,
)
from repro.hardware.latency import search_latency_seconds, tpot_seconds
from repro.hardware.throughput import max_batch_size, throughput_curve, throughput_tokens_per_second

__all__ = [
    "GPUSpec",
    "A800_80GB",
    "A100_40GB",
    "KVCacheProfile",
    "LayoutKind",
    "kv_cache_bytes_per_token",
    "kv_cache_bytes",
    "gpu_memory_bytes",
    "gpu_memory_gb",
    "tpot_seconds",
    "search_latency_seconds",
    "max_batch_size",
    "throughput_tokens_per_second",
    "throughput_curve",
]

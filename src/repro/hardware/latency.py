"""Decode latency model: time per output token (Figure 5, Table V)."""

from __future__ import annotations

from repro.hardware.gpu import GPUSpec
from repro.hardware.layout import KVCacheProfile, LayoutKind
from repro.hardware.memory import kv_cache_bytes_per_token
from repro.model.config import ModelSpec
from repro.quant.dtypes import BitWidth

#: Extra cache-line traffic multiplier for KV reads when precision regions
#: interleave (misaligned sub-byte segments straddle cache lines).
_MISALIGN_PENALTY = {
    LayoutKind.PACKED: 1.0,
    LayoutKind.SPARSE_OUTLIER: 1.25,
    LayoutKind.UNPACKED_MIXED: 1.4,
}

#: Host/GPU-side latency model of the Cocktail chunk-level search.  The
#: encoder pipeline (loading the encoder, tokenising the chunks, kernel
#: launches) costs a fixed amount per *batch* of requests, while the marginal
#: per-chunk encoding cost is tiny once batched — this is why the paper
#: observes that the search limits throughput only at small batch sizes.
_CHUNK_SEARCH_FIXED_S = 0.12
_CHUNK_SEARCH_PER_CHUNK_S = 2.0e-5

#: Token-level quantization search cost (KVQuant-style): per token per layer,
#: charged per request (the scan is proportional to each request's cache).
_TOKEN_SEARCH_PER_TOKEN_LAYER_S = 2.0e-6


def search_fixed_seconds(profile: KVCacheProfile) -> float:
    """Per-batch fixed latency of the method's quantization search."""
    method = profile.method.lower()
    if method.startswith("cocktail") and "random" not in method:
        return _CHUNK_SEARCH_FIXED_S
    return 0.0


def search_latency_seconds(
    profile: KVCacheProfile, spec: ModelSpec, context_len: int
) -> float:
    """Per-request (marginal) latency of the method's quantization search.

    Uniform methods search nothing; Cocktail encodes each request's chunks
    (cheap once batched — the fixed pipeline cost is reported separately by
    :func:`search_fixed_seconds`); token-level mixed precision (KVQuant)
    scans every token of every layer of each request.
    """
    method = profile.method.lower()
    if method.startswith("cocktail"):
        if "random" in method:
            return 0.0  # the ablation skips the search entirely
        n_chunks = max(1, context_len // max(profile.chunk_size, 1))
        return n_chunks * _CHUNK_SEARCH_PER_CHUNK_S
    if method == "kvquant":
        return _TOKEN_SEARCH_PER_TOKEN_LAYER_S * context_len * spec.n_layers
    return 0.0


def kv_read_seconds(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
) -> float:
    """Time to stream the KV cache of one request during one decode step."""
    context_bytes = context_len * kv_cache_bytes_per_token(spec, profile)
    # Generated tokens are kept at FP16; on average half the output is cached.
    output_bytes = (output_len / 2) * spec.kv_bytes_per_token(BitWidth.FP16)
    bytes_moved = (context_bytes + output_bytes) * gpu.kv_reuse_factor
    bytes_moved *= _MISALIGN_PENALTY[profile.layout]
    dequant_elements = (
        profile.quantized_fraction * context_len * spec.kv_elements_per_token()
    )
    dequant_seconds = dequant_elements * gpu.dequant_ns_per_element * 1e-9
    return bytes_moved / gpu.hbm_bandwidth_bytes_per_s + dequant_seconds


def weight_read_seconds(spec: ModelSpec, gpu: GPUSpec) -> float:
    """Time to stream the model weights once (shared across the batch)."""
    return spec.weight_bytes() / gpu.hbm_bandwidth_bytes_per_s


def compute_seconds(spec: ModelSpec, gpu: GPUSpec) -> float:
    """FLOP time of one decode step for one request (usually negligible)."""
    flops = 2.0 * spec.n_parameters
    return flops / (gpu.fp16_tflops * 1e12)


def tpot_seconds(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    *,
    output_len: int = 128,
    batch_size: int = 1,
    include_search: bool = False,
) -> float:
    """Time per output token for a batch of identical requests.

    Weights are read once per step and shared across the batch; KV traffic
    and compute scale with the batch size.  The quantization-search latency
    is charged per request and amortised over the output length when
    ``include_search`` is true (the throughput model always includes it).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be > 0, got {batch_size}")
    per_step = (
        gpu.framework_overhead_s
        + weight_read_seconds(spec, gpu)
        + batch_size
        * (
            kv_read_seconds(spec, gpu, profile, context_len, output_len=output_len)
            + compute_seconds(spec, gpu)
        )
    )
    if include_search and output_len > 0:
        per_step += batch_size * search_latency_seconds(profile, spec, context_len) / output_len
    return per_step


def tpot_microseconds(
    spec: ModelSpec,
    gpu: GPUSpec,
    profile: KVCacheProfile,
    context_len: int,
    **kwargs,
) -> float:
    """Same as :func:`tpot_seconds` but in microseconds (the paper's Table V unit)."""
    return tpot_seconds(spec, gpu, profile, context_len, **kwargs) * 1e6

"""KV-cache storage profiles: what the hardware model needs to know about a method.

A :class:`KVCacheProfile` summarises a quantization method's *layout*:
the fraction of tokens at each bitwidth, whether same-precision regions are
physically contiguous, and which storage layout that implies.  Profiles are
derived from the per-request :class:`~repro.baselines.base.KVQuantizationPlan`
produced by the accuracy simulator, so the efficiency experiments use the
precision mix a real request actually received.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.baselines.base import KVQuantizationPlan
from repro.quant.dtypes import BitWidth


class LayoutKind(enum.Enum):
    """Physical storage layout of a (possibly mixed-precision) KV cache."""

    #: Same-precision tokens are contiguous (uniform methods, or Cocktail
    #: after chunk reordering): sub-byte codes can be bit-packed densely.
    PACKED = "packed"
    #: Mostly one low precision with a small scattered FP16 outlier set
    #: (KVQuant): packed low-bit payload plus a sparse outlier store.
    SPARSE_OUTLIER = "sparse_outlier"
    #: Fully interleaved mixed precision (Cocktail without module II): every
    #: element occupies a full-width slot because packing across precision
    #: boundaries inside cache lines is not possible.
    UNPACKED_MIXED = "unpacked_mixed"


@dataclass(frozen=True)
class KVCacheProfile:
    """Storage/search profile of a quantization method for one request."""

    method: str
    bit_fractions: dict[BitWidth, float]
    reordered: bool
    layout: LayoutKind
    search_seconds: float = 0.0
    chunk_size: int = 32
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = sum(self.bit_fractions.values())
        if self.bit_fractions and not 0.999 <= total <= 1.001:
            raise ValueError(f"bit fractions must sum to 1, got {total}")

    @property
    def mean_bits(self) -> float:
        """Average payload bits per element."""
        if not self.bit_fractions:
            return float(BitWidth.FP16)
        return sum(float(int(bits)) * frac for bits, frac in self.bit_fractions.items())

    @property
    def quantized_fraction(self) -> float:
        """Fraction of tokens stored at an integer bitwidth."""
        return sum(
            frac for bits, frac in self.bit_fractions.items() if bits is not BitWidth.FP16
        )

    @property
    def is_uniform(self) -> bool:
        """Single-precision layout?"""
        return len(self.bit_fractions) <= 1

    @classmethod
    def from_plan(
        cls, plan: KVQuantizationPlan, *, chunk_size: int = 32
    ) -> "KVCacheProfile":
        """Derive the storage profile from a quantization plan."""
        fractions = plan.bit_fractions()
        layout = classify_layout(fractions, plan.reordered)
        return cls(
            method=plan.method,
            bit_fractions=fractions,
            reordered=plan.reordered,
            layout=layout,
            search_seconds=plan.search_seconds,
            chunk_size=chunk_size,
            details=dict(plan.details) if plan.details else {},
        )

    @classmethod
    def uniform(cls, method: str, bits: BitWidth) -> "KVCacheProfile":
        """Profile of a uniform single-precision method."""
        return cls(
            method=method,
            bit_fractions={bits: 1.0},
            reordered=True,
            layout=LayoutKind.PACKED,
        )


def classify_layout(
    bit_fractions: dict[BitWidth, float], reordered: bool
) -> LayoutKind:
    """Decide which storage layout a precision mix and ordering imply."""
    n_precisions = sum(1 for frac in bit_fractions.values() if frac > 0)
    if reordered or n_precisions <= 1:
        return LayoutKind.PACKED
    fp16_fraction = bit_fractions.get(BitWidth.FP16, 0.0)
    if n_precisions == 2 and fp16_fraction <= 0.05:
        return LayoutKind.SPARSE_OUTLIER
    return LayoutKind.UNPACKED_MIXED

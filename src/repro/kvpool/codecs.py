"""Token-row codecs: real quantized storage behind the paged KV cache.

The dense evaluation path simulates quantization by overwriting the cache
with fake-quantized floats (:meth:`KVCacheQuantizer.apply`).  The paged
cache instead *stores* the integer codes — bit-packed per page via
:mod:`repro.quant.packing` — and dequantizes on gather.  For that to be a
pure storage change, decoding the stored codes must reproduce the
fake-quant floats **bit for bit**.  Every codec here guarantees this by
running the exact same quantization functions the fake-quant path runs
(:func:`repro.quant.group.group_quantize`,
:func:`repro.quant.schemes.per_token_quantize` /
:func:`~repro.quant.schemes.per_channel_quantize`,
:func:`repro.quant.nonuniform.nuq_quantize`) and reconstructing the same
tensor objects at decode time.

A codec turns ``(n_tokens, n_kv_heads, head_dim)`` float rows into
per-token **code rows** (flat ``uint8``, one row per token) plus per-token
**metadata rows** (scales/zero points, when the quantization groups are
token-local).  Code rows are what the pool's pages bit-pack; metadata that
is *shared* across tokens (per-channel scales, nuq codebooks) lives on the
codec itself and is byte-accounted once per sequence via
:meth:`TokenRowCodec.shared_bytes`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.quant.dtypes import BitWidth, metadata_bytes_for_groups
from repro.quant.group import GroupQuantizedTensor, group_quantize
from repro.quant.nonuniform import nuq_quantize
from repro.quant.schemes import per_channel_quantize, per_token_quantize
from repro.quant.uniform import QuantizedTensor

#: Bytes charged per stored metadata value (FP16 scales/zero points, matching
#: :func:`repro.quant.dtypes.metadata_bytes_for_groups`).
META_VALUE_BYTES = 2

#: Widest code for which decode goes through a dequantization lookup table:
#: for 2–4 bit codes a ``2^bits``-entry table per scale group is (much)
#: smaller than the group itself, so building the table and gathering by
#: code replaces the full elementwise affine pass.  The tables are computed
#: with the *exact* float32 ops of :func:`repro.quant.uniform.dequantize`
#: — ``(level - zero_point) * scale`` per (group, level) — so a gathered
#: row is bit-for-bit the row the elementwise path would produce.
LUT_MAX_BITS = 4


def _affine_lut(
    levels: np.ndarray, scale: np.ndarray, zero_point: np.ndarray
) -> np.ndarray:
    """Per-group dequant table ``lut[..., level] = (level - zp) * scale``."""
    return ((levels - zero_point) * scale).astype(np.float32)


class TokenRowCodec(abc.ABC):
    """Encodes/decodes per-token rows of one layer's context K or V tensor."""

    #: Quantization bitwidth of the code rows.
    bits: BitWidth
    #: ``uint8`` codes per token row (before bit-packing).
    code_width: int
    #: float metadata values per token row (0 when metadata is shared).
    meta_width: int

    @abc.abstractmethod
    def decode(self, codes: np.ndarray, meta: np.ndarray) -> np.ndarray:
        """Decode ``(m, code_width)`` code rows back to ``(m, h, d)`` floats."""

    def shared_bytes(self) -> int:
        """Bytes of cross-token metadata stored once per sequence."""
        return 0

    def meta_row_bytes(self) -> int:
        """Accounted bytes of one token's metadata row."""
        return self.meta_width * META_VALUE_BYTES


class PerTokenGroupCodec(TokenRowCodec):
    """Group quantization with token-local groups along the head dimension.

    This is the codec behind Cocktail's per-``(token, head)`` groups
    (``group_size == head_dim``) and Atom's channel groups: every group lies
    inside a single token row, so scale/zero-point pairs travel with the
    token as metadata rows and pages are self-contained.
    """

    def __init__(
        self, bits: BitWidth | int, n_kv_heads: int, head_dim: int, group_size: int
    ):
        self.bits = BitWidth.from_bits(int(bits))
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.group_size = group_size
        self.pad = (-head_dim) % group_size
        self.n_groups = (head_dim + self.pad) // group_size
        self.code_width = n_kv_heads * self.n_groups * group_size
        self.meta_width = 2 * n_kv_heads * self.n_groups
        self._lut_levels = (
            np.arange(1 << int(self.bits), dtype=np.float32)
            if int(self.bits) <= LUT_MAX_BITS
            else None
        )

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode ``(m, h, d)`` float rows into code + metadata rows."""
        gq = group_quantize(x, self.bits, self.group_size)
        m = x.shape[0]
        codes = gq.inner.codes.reshape(m, self.code_width)
        scale = gq.inner.scale.reshape(m, -1)
        zero_point = gq.inner.zero_point.reshape(m, -1)
        meta = np.concatenate([scale, zero_point], axis=1).astype(np.float32)
        return codes, meta

    def decode(self, codes: np.ndarray, meta: np.ndarray) -> np.ndarray:
        m = codes.shape[0]
        h, g, gs = self.n_kv_heads, self.n_groups, self.group_size
        grouped = codes.reshape(m, h, g, gs)
        half = h * g
        scale = meta[:, :half].reshape(m, h, g, 1)
        zero_point = meta[:, half:].reshape(m, h, g, 1)
        if self._lut_levels is not None:
            # One (m, h, g, 2^bits) table, then a gather per code: for
            # group_size >> 2^bits this replaces two full-size elementwise
            # passes with table-size ones.  Same reshape/pad-strip sequence
            # as GroupQuantizedTensor.dequantize.
            lut = _affine_lut(self._lut_levels, scale, zero_point)
            flat = np.take_along_axis(lut, grouped, axis=3).reshape(m, h, g * gs)
            if self.pad:
                flat = flat[..., : -self.pad]
            return flat.reshape(m, h, self.head_dim)
        inner = QuantizedTensor(grouped, scale, zero_point, self.bits)
        return GroupQuantizedTensor(
            inner=inner,
            original_shape=(m, h, self.head_dim),
            group_size=gs,
            pad=self.pad,
        ).dequantize()


class PerTokenCodec(TokenRowCodec):
    """Per-token uniform quantization (one scale/zero point per token-head row).

    KIVI's V-cache scheme; equivalent to
    :func:`repro.quant.schemes.fake_quantize_per_token`.
    """

    def __init__(self, bits: BitWidth | int, n_kv_heads: int, head_dim: int):
        self.bits = BitWidth.from_bits(int(bits))
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.code_width = n_kv_heads * head_dim
        self.meta_width = 2 * n_kv_heads
        self._lut_levels = (
            np.arange(1 << int(self.bits), dtype=np.float32)
            if int(self.bits) <= LUT_MAX_BITS
            else None
        )

    def encode(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Encode ``(m, h, d)`` float rows into code + metadata rows."""
        qt = per_token_quantize(x, self.bits)
        m = x.shape[0]
        codes = qt.codes.reshape(m, self.code_width)
        scale = qt.scale.reshape(m, -1)
        zero_point = qt.zero_point.reshape(m, -1)
        meta = np.concatenate([scale, zero_point], axis=1).astype(np.float32)
        return codes, meta

    def decode(self, codes: np.ndarray, meta: np.ndarray) -> np.ndarray:
        m = codes.shape[0]
        h, d = self.n_kv_heads, self.head_dim
        scale = meta[:, :h].reshape(m, h, 1)
        zero_point = meta[:, h:].reshape(m, h, 1)
        if self._lut_levels is not None:
            # (m, h, 2^bits) table + gather: 2^bits <= 16 entries per row
            # versus head_dim elementwise affine ops.
            lut = _affine_lut(self._lut_levels, scale, zero_point)
            return np.take_along_axis(lut, codes.reshape(m, h, d), axis=2)
        return QuantizedTensor(
            codes.reshape(m, h, d), scale, zero_point, self.bits
        ).dequantize()


class PerChannelCodec(TokenRowCodec):
    """Per-channel uniform quantization with tensor-wide shared scales.

    KIVI's K-cache scheme: the scale/zero point of each ``(head, channel)``
    column is computed over *all* context tokens at once, so the codec is
    fitted on the full context tensor and the shared parameters are stored
    once per sequence (pages hold only the code rows).  Decoding a subset of
    rows is elementwise and therefore identical to decoding everything and
    slicing.
    """

    def __init__(self, x: np.ndarray, bits: BitWidth | int):
        self.bits = BitWidth.from_bits(int(bits))
        _, h, d = x.shape
        self.n_kv_heads = h
        self.head_dim = d
        self.code_width = h * d
        self.meta_width = 0
        qt = per_channel_quantize(x, self.bits)
        self.scale = qt.scale  # (1, h, d)
        self.zero_point = qt.zero_point
        self._codes = qt.codes.reshape(x.shape[0], self.code_width)
        self._lut_flat = None
        if int(self.bits) <= LUT_MAX_BITS:
            # The scales are fitted once for the whole sequence, so the
            # (2^bits, h*d) table is built once here and decode is a pure
            # per-channel gather.
            levels = np.arange(1 << int(self.bits), dtype=np.float32)
            lut = _affine_lut(levels.reshape(-1, 1, 1), self.scale, self.zero_point)
            self._lut_flat = np.ascontiguousarray(lut.reshape(-1, self.code_width))
            self._channel_index = np.arange(self.code_width)

    def take_codes(self) -> np.ndarray:
        """Code rows of the tensor the codec was fitted on."""
        return self._codes

    def decode(self, codes: np.ndarray, meta: np.ndarray) -> np.ndarray:
        del meta
        m = codes.shape[0]
        if self._lut_flat is not None:
            rows = self._lut_flat[codes.reshape(m, self.code_width), self._channel_index]
            return rows.reshape(m, self.n_kv_heads, self.head_dim)
        return QuantizedTensor(
            codes.reshape(m, self.n_kv_heads, self.head_dim),
            self.scale,
            self.zero_point,
            self.bits,
        ).dequantize()

    def shared_bytes(self) -> int:
        return metadata_bytes_for_groups(self.n_kv_heads * self.head_dim)


class NuqChannelNormCodec(TokenRowCodec):
    """KVQuant's channel-normalised non-uniform codec.

    The per-channel offset and scale plus the fitted nuq codebook are global
    over the quantized token set, so they live on the codec (accounted once)
    while pages store only the ``uint8`` codebook indices.  Construction and
    decode replicate :meth:`KVQuantQuantizer` numerics exactly: center per
    channel, scale by the per-channel absolute maximum, quantize against the
    fitted codebook, and invert the normalisation after lookup.
    """

    def __init__(self, x: np.ndarray, bits: BitWidth | int):
        self.bits = BitWidth.from_bits(int(bits))
        _, h, d = x.shape
        self.n_kv_heads = h
        self.head_dim = d
        self.code_width = h * d
        self.meta_width = 0
        self.channel_mean = x.mean(axis=0, keepdims=True)
        centered = x - self.channel_mean
        scale = np.max(np.abs(centered), axis=0, keepdims=True)
        self.scale = np.maximum(scale, 1e-12)
        nq = nuq_quantize(centered / self.scale, self.bits)
        self.codebook = nq.codebook
        self._codes = nq.codes.reshape(x.shape[0], self.code_width)
        self._lut_flat = None
        if int(self.bits) <= LUT_MAX_BITS:
            # Codebook, scale, and mean are all sequence-global, so the full
            # denormalisation ``codebook[l] * scale + mean`` folds into one
            # (2^bits, h*d) table at fit time — same float32 op order as the
            # fallback decode, so gathered rows are bit-identical.
            lut = (
                self.codebook.astype(np.float32).reshape(-1, 1, 1) * self.scale
                + self.channel_mean
            )
            self._lut_flat = np.ascontiguousarray(lut.reshape(-1, self.code_width))
            self._channel_index = np.arange(self.code_width)

    def take_codes(self) -> np.ndarray:
        """Code rows of the tensor the codec was fitted on."""
        return self._codes

    def decode(self, codes: np.ndarray, meta: np.ndarray) -> np.ndarray:
        del meta
        m = codes.shape[0]
        shape = (m, self.n_kv_heads, self.head_dim)
        if self._lut_flat is not None:
            rows = self._lut_flat[codes.reshape(m, self.code_width), self._channel_index]
            return rows.reshape(shape)
        dequantized = self.codebook[codes].reshape(shape).astype(np.float32)
        return dequantized * self.scale + self.channel_mean

    def shared_bytes(self) -> int:
        # FP16 codebook plus one FP16 (mean, scale) pair per channel.
        return 2 * int(self.codebook.size) + metadata_bytes_for_groups(
            self.n_kv_heads * self.head_dim
        )


@dataclass
class TensorEncoding:
    """Coded storage of the context region of one layer's K or V tensor.

    Attributes
    ----------
    token_bits:
        Per-token storage bitwidth; ``FP16`` rows stay as float rows inside
        their page (fake quantization never modifies FP16-marked tokens, so
        the page already holds the correct values), everything else is
        coded.  All encodings of one request must share the same
        ``token_bits`` — it is the plan's per-*token* precision assignment,
        and the paged cache compacts a page row for every tensor at once.
    codes:
        ``(n_tokens, code_width)`` ``uint8`` code rows (valid where
        ``token_bits`` is quantized; FP16 rows are zero).
    meta:
        ``(n_tokens, meta_width)`` float32 per-token metadata rows.
    codecs:
        Decoder per quantized bitwidth present in ``token_bits``.  All
        codecs of one encoding share ``code_width``/``meta_width``.
    """

    n_tokens: int
    n_kv_heads: int
    head_dim: int
    token_bits: np.ndarray
    codes: np.ndarray | None = None
    meta: np.ndarray | None = None
    codecs: dict[int, TokenRowCodec] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.token_bits = np.asarray(self.token_bits, dtype=np.int64)
        if self.token_bits.shape != (self.n_tokens,):
            raise ValueError(
                f"token_bits must have shape ({self.n_tokens},), got {self.token_bits.shape}"
            )
        quantized = set(np.unique(self.token_bits).tolist()) - {int(BitWidth.FP16)}
        missing = quantized - set(self.codecs)
        if missing:
            raise ValueError(f"no codec registered for bitwidths {sorted(missing)}")

    def shared_bytes(self) -> int:
        """Cross-token metadata bytes of all codecs of this tensor."""
        return sum(codec.shared_bytes() for codec in self.codecs.values())


def _blank_rows(
    n_tokens: int, codecs: dict[int, TokenRowCodec]
) -> tuple[np.ndarray, np.ndarray]:
    """Zeroed full-context code/meta row buffers sized for ``codecs``."""
    widths = {(c.code_width, c.meta_width) for c in codecs.values()}
    if len(widths) != 1:
        raise ValueError("all codecs of one encoding must share row widths")
    code_width, meta_width = next(iter(widths))
    codes = np.zeros((n_tokens, code_width), dtype=np.uint8)
    meta = np.zeros((n_tokens, meta_width), dtype=np.float32)
    return codes, meta


def encode_per_token_groups(
    k: np.ndarray,
    v: np.ndarray,
    token_bits: np.ndarray,
    group_size: int,
    *,
    start: int = 0,
) -> tuple[TensorEncoding, TensorEncoding]:
    """Encode context K/V with token-local quantization groups.

    Used by Cocktail (``group_size == head_dim``, mixed bits per token) and
    Atom (uniform bits).  Tokens marked FP16 stay as float rows.

    ``start`` skips the quantization work for the leading rows: the groups
    are token-local, so rows below ``start`` (matched by the prefix index
    and adopted already packed) do not influence the codes of the rows
    after them.  Their code rows are left blank.
    """
    token_bits = np.asarray(token_bits, dtype=np.int64)
    n_tokens, h, d = k.shape
    encodings = []
    for tensor in (k, v):
        quantized_bits = sorted(
            set(token_bits.tolist()) - {int(BitWidth.FP16)}
        )
        codecs = {
            bits: PerTokenGroupCodec(bits, h, d, group_size)
            for bits in quantized_bits
        }
        codes = meta = None
        if codecs:
            codes, meta = _blank_rows(n_tokens, codecs)
            for bits, codec in codecs.items():
                mask = token_bits == bits
                mask[:start] = False
                if mask.any():
                    codes[mask], meta[mask] = codec.encode(tensor[mask])
        encodings.append(
            TensorEncoding(
                n_tokens=n_tokens,
                n_kv_heads=h,
                head_dim=d,
                token_bits=token_bits,
                codes=codes,
                meta=meta,
                codecs=codecs,
            )
        )
    return encodings[0], encodings[1]


def encode_fitted(
    tensor: np.ndarray,
    token_bits: np.ndarray,
    codec_cls,
    bits: BitWidth | int,
    *,
    start: int = 0,
) -> TensorEncoding:
    """Encode one tensor with a codec fitted on its quantized token rows.

    ``codec_cls`` is a :class:`PerChannelCodec`-style class whose
    constructor takes the quantized rows and exposes :meth:`take_codes`.
    FP16-marked rows (KVQuant outlier tokens) stay as float rows in their
    page.

    The fit always covers **all** quantized rows — the shared scales /
    codebooks depend on the full context, which is why these methods only
    ever share pages between exact full-context repeats — but ``start``
    blanks the code rows of the leading (already adopted) pages so they are
    not materialised twice.
    """
    token_bits = np.asarray(token_bits, dtype=np.int64)
    n_tokens, h, d = tensor.shape
    mask = token_bits != int(BitWidth.FP16)
    codes = meta = None
    codecs: dict[int, TokenRowCodec] = {}
    if mask.any():
        codec = codec_cls(tensor[mask], bits)
        codecs = {int(codec.bits): codec}
        codes, meta = _blank_rows(n_tokens, codecs)
        codes[mask] = codec.take_codes()
        codes[:start] = 0
    return TensorEncoding(
        n_tokens=n_tokens,
        n_kv_heads=h,
        head_dim=d,
        token_bits=token_bits,
        codes=codes,
        meta=meta,
        codecs=codecs,
    )

"""Paged KV-cache pool: shared block allocator with packed quantized storage.

The subsystem the serving engine stores every sequence's KV cache in:

* :class:`~repro.kvpool.pool.BlockPool` — fixed-size pages, free-list
  allocation, measured byte accounting, swap-out/swap-in.
* :class:`~repro.kvpool.cache.PagedKVCache` / ``BlockTable`` — a sequence's
  view onto the pool, drop-in for the dense ``ModelKVCache``.
* :mod:`~repro.kvpool.codecs` — token-row codecs that store each
  quantization method's *actual* packed codes + scales, bit-for-bit
  equivalent to the fake-quant simulation path.
* :mod:`~repro.kvpool.prefix` — the cross-request reuse layer: chained
  block hashes and the :class:`~repro.kvpool.prefix.PrefixCache` radix
  index that lets warm requests adopt already-packed pages instead of
  re-prefilling and re-quantizing a repeated context.
"""

from repro.kvpool.cache import BlockTable, PagedKVCache, PagedLayerView
from repro.kvpool.prefix import (
    PrefixCache,
    PrefixCacheStats,
    block_hashes,
    content_hash,
)
from repro.kvpool.codecs import (
    NuqChannelNormCodec,
    PerChannelCodec,
    PerTokenCodec,
    PerTokenGroupCodec,
    TensorEncoding,
    TokenRowCodec,
    encode_fitted,
    encode_per_token_groups,
)
from repro.kvpool.pool import Block, BlockPool, PackedRun, PoolExhausted

__all__ = [
    "Block",
    "BlockPool",
    "BlockTable",
    "NuqChannelNormCodec",
    "PackedRun",
    "PagedKVCache",
    "PagedLayerView",
    "PerChannelCodec",
    "PerTokenCodec",
    "PerTokenGroupCodec",
    "PoolExhausted",
    "PrefixCache",
    "PrefixCacheStats",
    "TensorEncoding",
    "TokenRowCodec",
    "block_hashes",
    "content_hash",
    "encode_fitted",
    "encode_per_token_groups",
]

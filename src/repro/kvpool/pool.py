"""The shared paged block pool.

A :class:`BlockPool` owns fixed-size pages ("blocks") of KV storage.  One
block reserves ``block_size`` token rows across *all* layers of the model
(``2 × n_layers × block_size × n_kv_heads × head_dim`` elements counting K
and V), so a sequence needs a single block table regardless of depth.

Blocks start in full-precision form (token rows are appended during prefill
and decode).  When a request's context region is quantized, the covering
blocks are *packed*: the quantized rows' ``uint8`` codes are bit-packed per
page with :func:`repro.quant.packing.pack_codes` and the full-precision
copies are zeroed out, so the pool's byte accounting reflects what a real
device allocation would hold.  Bytes follow the repo-wide device model: FP16
rows are charged 2 bytes per element (the NumPy substrate computes in
float32), packed payloads are charged their actual buffer size, and
scale/zero-point metadata is charged at FP16 per value.

Accounting is *page-granular* for full-precision storage: an allocated
block charges all ``block_size`` rows it reserves even when only some are
filled.  That internal fragmentation is exactly what the analytic memory
model cannot see and what the measured tables surface.

Blocks are **reference counted**: :meth:`BlockPool.allocate` hands out a
page with one reference, additional readers :meth:`~BlockPool.retain` it,
and :meth:`~BlockPool.release` returns a reference — the page is only freed
when the count reaches zero.  This is what lets the prefix index
(:mod:`repro.kvpool.prefix`) and several concurrent sequences share one
physical copy of a packed context page.  Writers that touch a shared page
go through :meth:`~BlockPool.copy_on_write`; swap-out refuses shared pages
outright (a live reader must never lose its storage).  Bounded pools can
additionally register *reclaimers* — holders of pages nobody is actively
reading (the prefix index's cached-but-idle pages) that can be asked to
give pages back when an allocation would otherwise fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.kvpool.codecs import META_VALUE_BYTES, TokenRowCodec
from repro.profiling import span as profiling_span
from repro.quant.dtypes import BitWidth, bytes_for_elements
from repro.quant.packing import pack_codes, unpack_codes

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from repro.hardware.gpu import GPUSpec


class PoolExhausted(RuntimeError):
    """Raised when the pool has no free block to satisfy an allocation."""


class BlockReclaimer(Protocol):
    """A holder of idle pages a bounded pool can ask to give pages back.

    The prefix index implements this: its cached pages are only reclaimable
    while no sequence holds a reference to them, so reclaiming never evicts
    a page under a live reader.
    """

    def reclaimable_blocks(self) -> int:
        """How many pages this holder could free right now."""

    def reclaim(self, n_blocks: int) -> int:
        """Free up to ``n_blocks`` pages; returns how many were freed."""


@dataclass
class PackedRun:
    """A same-precision run of packed token rows inside one block.

    Attributes
    ----------
    bits:
        Storage precision of the run.
    rows:
        Row offsets within the block, in encoding order.
    packed_codes:
        Bit-packed ``uint8`` payload (:func:`repro.quant.packing.pack_codes`
        of the run's flattened code rows).
    code_width:
        Codes per token row (needed to unpack).
    meta:
        ``(n_rows, meta_width)`` float32 per-token metadata rows.
    codec:
        Decoder turning unpacked code rows + metadata back into floats.
    """

    bits: BitWidth
    rows: np.ndarray
    packed_codes: np.ndarray
    code_width: int
    meta: np.ndarray
    codec: TokenRowCodec

    def __post_init__(self) -> None:
        self._decoded: np.ndarray | None = None

    @property
    def n_rows(self) -> int:
        return int(self.rows.size)

    def decode(self) -> np.ndarray:
        """Dequantized ``(n_rows, h, d)`` float rows (cached; runs are immutable)."""
        if self._decoded is None:
            with profiling_span("dequant"):
                n_codes = self.n_rows * self.code_width
                codes = unpack_codes(self.packed_codes, self.bits, n_codes)
                self._decoded = self.codec.decode(
                    codes.reshape(self.n_rows, self.code_width), self.meta
                )
        return self._decoded

    def storage_bytes(self) -> int:
        """Packed payload plus per-token metadata bytes."""
        return int(self.packed_codes.nbytes) + self.meta.size * META_VALUE_BYTES


class Block:
    """One fixed-size page: ``block_size`` token rows across all layers."""

    def __init__(self, n_layers: int, block_size: int, n_kv_heads: int, head_dim: int):
        self.n_layers = n_layers
        self.block_size = block_size
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        shape = (n_layers, block_size, n_kv_heads, head_dim)
        self.fp_k = np.zeros(shape, dtype=np.float32)
        self.fp_v = np.zeros(shape, dtype=np.float32)
        #: Packed runs per layer for K and V (empty until the block is packed).
        self.packed_k: list[list[PackedRun]] = [[] for _ in range(n_layers)]
        self.packed_v: list[list[PackedRun]] = [[] for _ in range(n_layers)]
        #: Number of rows whose full-precision storage was compacted away.
        self.n_quantized_rows: int = 0
        #: Context rows of this block covered by packing (write guard): rows
        #: below this offset are frozen, even the FP16 ones kept as floats.
        self.packed_upto: int = 0
        #: Bumped by every mutation — a change audit trail for tests and
        #: debugging.  (The gather memos in
        #: :class:`repro.kvpool.cache.PagedKVCache` key on the cache's own
        #: ``_content_version``/``_context_version`` counters, bumped by
        #: every path that can mutate a mapped page, so warm hits stay O(1)
        #: instead of walking the pages to collect versions.)
        self.version: int = 0

    # -- writes --------------------------------------------------------------

    def write(self, layer: int, start_row: int, k_rows: np.ndarray, v_rows: np.ndarray) -> None:
        """Write full-precision rows ``[start_row, start_row + n)`` of one layer."""
        n = k_rows.shape[0]
        end = start_row + n
        if end > self.block_size:
            raise ValueError(f"write of rows [{start_row}, {end}) exceeds the page")
        if start_row < self.packed_upto:
            raise ValueError("cannot overwrite rows that were packed")
        self.fp_k[layer, start_row:end] = k_rows
        self.fp_v[layer, start_row:end] = v_rows
        self.version += 1

    def add_packed_run(self, layer: int, tensor: str, run: PackedRun) -> None:
        """Attach a packed run to one layer's K or V storage."""
        (self.packed_k if tensor == "k" else self.packed_v)[layer].append(run)
        self.version += 1

    def seal_quantized_rows(self, rows: np.ndarray, packed_upto: int) -> None:
        """Zero the full-precision copies of rows now held as packed runs.

        Called once per block after packing; gathers must come from the
        packed codes from then on, so a decode bug cannot silently fall back
        to the original floats.  ``packed_upto`` freezes the block's context
        rows against later writes.
        """
        if rows.size:
            self.fp_k[:, rows] = 0.0
            self.fp_v[:, rows] = 0.0
        self.n_quantized_rows += int(rows.size)
        self.packed_upto = max(self.packed_upto, packed_upto)
        self.version += 1

    def clone(self) -> "Block":
        """Private deep copy of this page (the copy-on-write target).

        Full-precision storage is copied; packed runs are immutable and can
        be shared between the original and the clone.
        """
        copy = Block(self.n_layers, self.block_size, self.n_kv_heads, self.head_dim)
        copy.fp_k = self.fp_k.copy()
        copy.fp_v = self.fp_v.copy()
        copy.packed_k = [list(runs) for runs in self.packed_k]
        copy.packed_v = [list(runs) for runs in self.packed_v]
        copy.n_quantized_rows = self.n_quantized_rows
        copy.packed_upto = self.packed_upto
        copy.version = self.version
        return copy

    # -- reads ---------------------------------------------------------------

    def gather(self, layer: int, n_rows: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialise rows ``[0, n_rows)`` of one layer as float32 K and V."""
        k = self.fp_k[layer, :n_rows].copy()
        v = self.fp_v[layer, :n_rows].copy()
        for runs, out in ((self.packed_k[layer], k), (self.packed_v[layer], v)):
            for run in runs:
                out[run.rows] = run.decode()
        return k, v

    # -- accounting ----------------------------------------------------------

    def fp_row_bytes(self) -> int:
        """Accounted bytes of one full-precision token row (K + V, all layers)."""
        return bytes_for_elements(
            2 * self.n_layers * self.n_kv_heads * self.head_dim, BitWidth.FP16
        )

    def packed_bytes(self) -> int:
        """Bytes of all packed runs held by this block."""
        return sum(
            run.storage_bytes()
            for runs in (*self.packed_k, *self.packed_v)
            for run in runs
        )

    def storage_bytes(self) -> int:
        """Resident bytes of the page under the device storage model.

        Full-precision storage is charged at page granularity — every
        reserved row that was not compacted by packing counts, filled or
        not — plus the packed payload/metadata.
        """
        fp_rows = self.block_size - self.n_quantized_rows
        return fp_rows * self.fp_row_bytes() + self.packed_bytes()


class BlockPool:
    """Free-list allocator over fixed-size KV pages with byte accounting.

    Parameters
    ----------
    n_layers, n_kv_heads, head_dim:
        Geometry every page is sized for (must match the model).
    block_size:
        Token rows per page.
    capacity_blocks:
        Maximum number of simultaneously allocated pages; ``None`` means
        unbounded (the pool grows on demand).
    """

    def __init__(
        self,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        *,
        block_size: int = 16,
        capacity_blocks: int | None = None,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if capacity_blocks is not None and capacity_blocks < 1:
            raise ValueError(f"capacity_blocks must be >= 1, got {capacity_blocks}")
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self._blocks: dict[int, Block] = {}
        self._refcounts: dict[int, int] = {}
        self._reclaimers: list[BlockReclaimer] = []
        self._next_id = 0
        self._resident_bytes = 0
        self._reserved_blocks = 0
        self.n_swap_outs = 0
        self.n_swap_ins = 0
        self.n_cow_copies = 0
        self.peak_allocated_blocks = 0
        self.peak_bytes = 0

    @classmethod
    def for_gpu(
        cls,
        gpu: "GPUSpec",
        *,
        n_layers: int,
        n_kv_heads: int,
        head_dim: int,
        block_size: int = 16,
        memory_fraction: float = 0.9,
    ) -> "BlockPool":
        """Size a pool from a :class:`~repro.hardware.gpu.GPUSpec`.

        ``memory_fraction`` of the device's HBM is granted to the KV pool
        and divided by the full-precision page size; a device too small for
        even one page is rejected.
        """
        if not 0.0 < memory_fraction <= 1.0:
            raise ValueError(f"memory_fraction must be in (0, 1], got {memory_fraction}")
        page_bytes = block_size * bytes_for_elements(
            2 * n_layers * n_kv_heads * head_dim, BitWidth.FP16
        )
        capacity = int(gpu.memory_bytes * memory_fraction) // page_bytes
        if capacity < 1:
            raise ValueError(
                f"{gpu.name} cannot hold a single {page_bytes}-byte KV page"
            )
        return cls(
            n_layers,
            n_kv_heads,
            head_dim,
            block_size=block_size,
            capacity_blocks=capacity,
        )

    # -- queries -------------------------------------------------------------

    @property
    def n_allocated(self) -> int:
        """Number of currently allocated pages."""
        return len(self._blocks)

    @property
    def n_free_blocks(self) -> int | None:
        """Free pages remaining, or ``None`` for an unbounded pool."""
        if self.capacity_blocks is None:
            return None
        return self.capacity_blocks - len(self._blocks)

    def reclaimable_blocks(self) -> int:
        """Pages the registered reclaimers could give back right now."""
        return sum(source.reclaimable_blocks() for source in self._reclaimers)

    def available_blocks(self) -> int | None:
        """Free pages plus reclaimable ones, or ``None`` for unbounded.

        This is the number the scheduler budgets against: a page held only
        by the prefix index is *available* — allocating simply reclaims it —
        so idle cached pages never block admission or trigger preemption.
        Pages temporarily held by a :meth:`reserve` ledger (the batched
        decode round's deferred allocations) are subtracted.
        """
        free = self.n_free_blocks
        if free is None:
            return None
        return free + self.reclaimable_blocks() - self._reserved_blocks

    # -- reservations ---------------------------------------------------------

    @property
    def reserved_blocks(self) -> int:
        """Pages currently held back from availability queries."""
        return self._reserved_blocks

    def reserve(self, n_blocks: int) -> None:
        """Hold ``n_blocks`` pages back from :meth:`available_blocks`.

        The batched decode round defers its forwards (and therefore their
        page allocations) until every session's capacity check has run; the
        reservation ledger makes those checks observe the pool exactly as
        the sequential round — check, allocate, check, allocate … — would
        have left it.  Reservations are bookkeeping only: the allocation
        path (:meth:`allocate` / :meth:`copy_on_write` / :meth:`swap_in`)
        ignores them, since the reserver is the one coming back to claim
        the pages.
        """
        if n_blocks < 0:
            raise ValueError(f"cannot reserve {n_blocks} blocks")
        self._reserved_blocks += n_blocks

    def unreserve(self, n_blocks: int) -> None:
        """Return ``n_blocks`` reserved pages to availability queries."""
        if n_blocks < 0 or n_blocks > self._reserved_blocks:
            raise ValueError(
                f"cannot unreserve {n_blocks} of {self._reserved_blocks} reserved blocks"
            )
        self._reserved_blocks -= n_blocks

    def can_allocate(self, n_blocks: int) -> bool:
        """Whether ``n_blocks`` more pages fit right now (reclaiming if needed)."""
        available = self.available_blocks()
        return available is None or n_blocks <= available

    def add_reclaimer(self, source: BlockReclaimer) -> None:
        """Register a holder of idle pages to ask when the pool runs full."""
        if source not in self._reclaimers:
            self._reclaimers.append(source)

    def refcount(self, block_id: int) -> int:
        """Current reference count of an allocated page."""
        self.get(block_id)  # raise uniformly on unknown ids
        return self._refcounts[block_id]

    def get(self, block_id: int) -> Block:
        """The allocated page behind ``block_id``."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise ValueError(f"block {block_id} is not allocated") from None

    def allocated_bytes(self) -> int:
        """Measured resident bytes of every allocated page.

        Maintained incrementally (allocation, free, swap and repacking all
        adjust a running counter), so the query — and the peak tracking on
        every allocation — is O(1) instead of a walk over the pool.
        """
        return self._resident_bytes

    def note_block_repacked(self, byte_delta: int) -> None:
        """Adjust the resident-byte counter after a page's storage changed
        in place (packing compacts full-precision rows into coded runs)."""
        self._resident_bytes += byte_delta

    def reserved_tokens(self) -> int:
        """Token rows reserved by all allocated pages."""
        return len(self._blocks) * self.block_size

    # -- allocation ----------------------------------------------------------

    def _ensure_free_slot(self) -> None:
        """Guarantee one raw free slot, reclaiming idle cached pages if needed."""
        if self.n_free_blocks is None or self.n_free_blocks >= 1:
            return
        for source in self._reclaimers:
            if source.reclaim(1 - (self.n_free_blocks or 0)) and self.n_free_blocks >= 1:
                return
        if self.n_free_blocks < 1:
            raise PoolExhausted(
                f"pool is full ({self.capacity_blocks} blocks of {self.block_size} tokens)"
            )

    def allocate(self) -> int:
        """Allocate one page (refcount 1); raises :class:`PoolExhausted` when full."""
        self._ensure_free_slot()
        block = Block(self.n_layers, self.block_size, self.n_kv_heads, self.head_dim)
        return self._attach(block)

    def retain(self, block_id: int) -> int:
        """Take one more reference on an allocated page; returns the new count."""
        self.get(block_id)
        self._refcounts[block_id] += 1
        return self._refcounts[block_id]

    def release(self, block_id: int) -> None:
        """Return one reference; the page is freed when the count hits zero.

        Releasing an unknown (or already-freed) id raises, preserving the
        old ``free``-path double-free guard.
        """
        if block_id not in self._blocks:
            raise ValueError(f"block {block_id} is not allocated (double free?)")
        self._refcounts[block_id] -= 1
        if self._refcounts[block_id] == 0:
            self._resident_bytes -= self._blocks[block_id].storage_bytes()
            del self._blocks[block_id]
            del self._refcounts[block_id]

    def copy_on_write(self, block_id: int) -> int:
        """Give the caller a private copy of a shared page.

        When the page is exclusively owned (refcount 1) it is returned
        unchanged; otherwise one reference is returned and a deep copy is
        attached under a fresh id.  The caller must swap the returned id
        into its block table before writing.
        """
        if self.refcount(block_id) == 1:
            return block_id
        clone = self.get(block_id).clone()
        self._ensure_free_slot()
        self._refcounts[block_id] -= 1
        self.n_cow_copies += 1
        return self._attach(clone)

    def _attach(self, block: Block) -> int:
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = block
        self._refcounts[block_id] = 1
        self._resident_bytes += block.storage_bytes()
        self.peak_allocated_blocks = max(self.peak_allocated_blocks, len(self._blocks))
        self.peak_bytes = max(self.peak_bytes, self._resident_bytes)
        return block_id

    # -- swap ----------------------------------------------------------------

    def swap_out(self, block_id: int) -> Block:
        """Detach an exclusively-owned page to host memory, freeing its slot.

        Shared pages (refcount > 1) are refused: another sequence or the
        prefix index is still reading them, and evicting storage under a
        live reader would corrupt it.  Callers keep shared pages resident
        and swap only their private tail.
        """
        if self.refcount(block_id) > 1:
            raise ValueError(
                f"block {block_id} is shared ({self.refcount(block_id)} refs); "
                "only exclusively-owned pages can be swapped out"
            )
        block = self.get(block_id)
        self.release(block_id)
        self.n_swap_outs += 1
        return block

    def swap_in(self, block: Block) -> int:
        """Re-attach a host-side page under a fresh id (refcount 1)."""
        if block.block_size != self.block_size or block.n_layers != self.n_layers:
            raise ValueError("swapped block geometry does not match this pool")
        self._ensure_free_slot()
        self.n_swap_ins += 1
        return self._attach(block)

    # -- invariants ----------------------------------------------------------

    def assert_consistent(self) -> None:
        """Cheap structural invariants, asserted by the stress tests.

        Every allocated page has a positive refcount, the refcount map and
        the block map agree, the incremental byte counter matches a fresh
        walk over the pages, and a bounded pool never exceeds its capacity.
        """
        assert set(self._blocks) == set(self._refcounts)
        assert all(count >= 1 for count in self._refcounts.values())
        walked = sum(block.storage_bytes() for block in self._blocks.values())
        assert walked == self._resident_bytes
        if self.capacity_blocks is not None:
            assert len(self._blocks) <= self.capacity_blocks


def pack_block_runs(
    block: Block,
    layer: int,
    tensor: str,
    rows: np.ndarray,
    token_bits: np.ndarray,
    codes: np.ndarray,
    meta: np.ndarray,
    codecs: dict[int, TokenRowCodec],
) -> None:
    """Build the packed runs of one block/layer/tensor from encoding rows.

    ``rows`` are offsets within the block; ``token_bits``/``codes``/``meta``
    are the corresponding rows sliced out of a
    :class:`~repro.kvpool.codecs.TensorEncoding`.
    """
    for bits in sorted(set(token_bits.tolist())):
        if bits == int(BitWidth.FP16):
            continue
        mask = token_bits == bits
        codec = codecs[bits]
        run_codes = codes[mask]
        run = PackedRun(
            bits=BitWidth.from_bits(bits),
            rows=rows[mask],
            packed_codes=pack_codes(run_codes.reshape(-1), bits),
            code_width=codec.code_width,
            meta=meta[mask].copy(),
            codec=codec,
        )
        block.add_packed_run(layer, tensor, run)

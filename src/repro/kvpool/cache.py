"""Paged KV cache: a sequence's view onto the shared block pool.

:class:`PagedKVCache` is a drop-in replacement for
:class:`~repro.model.kv_cache.ModelKVCache` whose storage lives in a shared
:class:`~repro.kvpool.pool.BlockPool` instead of private contiguous arrays.
Each sequence holds a :class:`BlockTable` mapping logical token positions to
pages; per-layer :class:`PagedLayerView` objects expose the same
``append``/``keys``/``values`` surface the attention layer drives, so the
transformer runs unmodified on either cache.

After prefill, the serving backend packs the context region
(:meth:`PagedKVCache.pack_context`): quantized token rows become bit-packed
codes + scales inside their pages, FP16-marked rows and all generated
tokens stay full precision — matching the paper, which never quantizes
decode-phase tokens.  Gathering dequantizes per page and is bit-for-bit
identical to the dense fake-quant cache (see :mod:`repro.kvpool.codecs`).

Preemption uses the pool's swap interface: :meth:`swap_out` detaches every
*exclusively-owned* page to a host-side store (freeing pool capacity for
other sequences) and :meth:`swap_in` restores them, so a preempted request
resumes without any recomputation.  Pages shared with other sequences or
the prefix index stay resident across the round trip — they are someone
else's storage too and are never evicted under a live reader.

Cross-request reuse enters through :meth:`PagedKVCache.adopt_blocks`: a
warm request starts its block table with retained references to already
packed pages from the prefix index (:mod:`repro.kvpool.prefix`) and only
allocates fresh pages for the unmatched tail.  All writes are
copy-on-write: touching a row of a shared page first gives this sequence a
private copy, so one sequence's decode tail can never corrupt a page
another request is still reading.
"""

from __future__ import annotations

import numpy as np

from repro.kvpool.codecs import TensorEncoding
from repro.kvpool.pool import Block, BlockPool, PoolExhausted, pack_block_runs
from repro.profiling import span as profiling_span
from repro.quant.dtypes import BitWidth, bytes_for_elements


class _GatherBuffer:
    """One layer's reusable gather scratch: rows plus transposed mirrors.

    ``k``/``v`` hold the gathered ``(capacity, h, d)`` rows of which the
    first ``valid`` are filled; ``views`` is the ``(k[:valid], v[:valid])``
    tuple handed to callers (recreated only when ``valid`` moves, so a
    repeated read returns the *same* tuple).  ``k_t``/``v_t`` are the
    lazily-built head-major mirrors — ``(h, d, capacity)`` keys and
    ``(h, capacity, d)`` values, exactly the operand layout the per-head
    attention GEMMs consume — maintained incrementally so the attend path
    never re-transposes the whole history per step.

    Appends past ``valid`` write rows no previously returned view covers;
    any mutation of existing rows bumps the cache's ``_content_version``,
    which retires the whole buffer (fresh arrays, never an in-place rewrite
    a caller-held view could observe).
    """

    __slots__ = ("k", "v", "k_t", "v_t", "valid", "version", "views", "mirror_views")

    def __init__(self, k: np.ndarray, v: np.ndarray, valid: int, version: int):
        self.k = k
        self.v = v
        self.k_t: np.ndarray | None = None
        self.v_t: np.ndarray | None = None
        self.valid = valid
        self.version = version
        self.views = (k[:valid], v[:valid])
        self.mirror_views: tuple[np.ndarray, np.ndarray] | None = None


class BlockTable:
    """Maps a sequence's logical token positions to pool pages."""

    def __init__(self, block_size: int):
        self.block_size = block_size
        self.block_ids: list[int] = []

    def __len__(self) -> int:
        return len(self.block_ids)

    @staticmethod
    def blocks_for_tokens(n_tokens: int, block_size: int) -> int:
        """Pages needed to hold ``n_tokens`` rows."""
        return -(-n_tokens // block_size)

    def locate(self, position: int) -> tuple[int, int]:
        """``(table index, row offset)`` of a logical token position."""
        return position // self.block_size, position % self.block_size

    def reserved_tokens(self) -> int:
        """Token rows reserved by the mapped pages."""
        return len(self.block_ids) * self.block_size


class PagedLayerView:
    """One layer's :class:`~repro.model.kv_cache.LayerKVCache`-shaped view."""

    def __init__(self, cache: "PagedKVCache", layer_index: int):
        self._cache = cache
        self._layer = layer_index

    @property
    def n_kv_heads(self) -> int:
        return self._cache.n_kv_heads

    @property
    def head_dim(self) -> int:
        return self._cache.head_dim

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def length(self) -> int:
        return self._cache.layer_length(self._layer)

    @property
    def k(self) -> np.ndarray:
        """Valid K rows, gathered (and dequantized) from the pages."""
        return self.keys()

    @property
    def v(self) -> np.ndarray:
        """Valid V rows, gathered (and dequantized) from the pages."""
        return self.values()

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append ``(n, n_kv_heads, head_dim)`` rows to this layer's pages."""
        self._cache.append_layer(self._layer, k_new, v_new)

    def keys(self) -> np.ndarray:
        return self._cache.gather_layer(self._layer)[0]

    def values(self) -> np.ndarray:
        return self._cache.gather_layer(self._layer)[1]

    def kv_mirrors(self) -> tuple[np.ndarray, np.ndarray]:
        """Head-major transposed K/V views (see :meth:`PagedKVCache.layer_mirrors`)."""
        return self._cache.layer_mirrors(self._layer)


class PagedKVCache:
    """KV cache of one sequence, stored as pages of a shared block pool."""

    def __init__(self, pool: BlockPool, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.pool = pool
        self.capacity = capacity
        self.n_layers = pool.n_layers
        self.n_kv_heads = pool.n_kv_heads
        self.head_dim = pool.head_dim
        self.table = BlockTable(pool.block_size)
        self.layers = [PagedLayerView(self, i) for i in range(pool.n_layers)]
        self.n_context = 0
        self._layer_lengths = [0] * pool.n_layers
        self._packed = False
        self._shared_metadata_bytes = 0
        #: While swapped out: one entry per table slot, either
        #: ``("host", Block)`` for a detached exclusive page or
        #: ``("pool", block_id)`` for a shared page that stayed resident.
        self._swap_state: list[tuple[str, Block | int]] | None = None
        self._released = False
        #: Leading pages adopted from the prefix index (shared, pre-packed).
        self.n_adopted_blocks = 0
        #: Per-layer growing gather scratch (rows + transposed mirrors); a
        #: decode step's ``keys()``/``values()``/``kv_mirrors()`` reads cost
        #: one incremental row copy instead of re-materialising (and
        #: re-dequantizing) the whole layer — see :meth:`gather_layer`.
        self._gather_buffers: dict[int, _GatherBuffer] = {}
        #: Per-layer memo of the gathered context-region pages, keyed on
        #: ``(n_blocks, _context_version)`` — see :meth:`gather_context`.
        self._context_memo: dict[
            int, tuple[tuple[int, int], tuple[np.ndarray, np.ndarray]]
        ] = {}
        #: Bumped whenever *any* already-written row may have changed
        #: (COW fork, context overwrite, packing, truncation, adoption);
        #: retires the per-layer gather buffers.
        self._content_version = 0
        #: Bumped only by mutations that can touch *context-region* pages
        #: (COW fork, context overwrite, packing, adoption) — deliberately
        #: not by :meth:`truncate`, which cannot reach the context region,
        #: so speculative rollbacks keep the context memo warm.
        self._context_version = 0

    # -- geometry ------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of cached tokens (the most-advanced layer during a pass)."""
        return max(self._layer_lengths)

    @property
    def n_blocks(self) -> int:
        return len(self.table)

    @property
    def is_swapped(self) -> bool:
        """Whether the pages currently live in the host-side swap store."""
        return self._swap_state is not None

    def layer_length(self, layer_index: int) -> int:
        return self._layer_lengths[layer_index]

    def layer(self, index: int) -> PagedLayerView:
        """Return the view of layer ``index``."""
        return self.layers[index]

    def has_capacity(self) -> bool:
        """Whether one more decode token can be absorbed."""
        if self._released or self.is_swapped or self.length >= self.capacity:
            return False
        return self.length < self.table.reserved_tokens() or self.pool.can_allocate(1)

    def next_token_block_cost(self) -> int:
        """Pool pages the *next* decode token will newly allocate (0 or 1).

        The batched decode round reserves this many pages between a
        sequence's capacity check and its deferred fused forward, so later
        sequences in the round observe the same pool availability the
        sequential check-then-allocate interleaving would produce.
        """
        return self.block_cost_for_tokens(1)

    def block_cost_for_tokens(self, n_tokens: int) -> int:
        """Pool pages appending ``n_tokens`` more rows would newly allocate.

        The speculative planner sizes its draft window with this: a verify
        run appends up to ``k + 1`` rows at once, and the engine both
        checks :meth:`~repro.kvpool.pool.BlockPool.can_allocate` and
        reserves this many pages before deferring the fused forward, so
        drafting can never make a round claim pages a sequential
        one-token-per-step engine would not have been granted.
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        needed = BlockTable.blocks_for_tokens(
            self.length + n_tokens, self.table.block_size
        )
        return max(0, needed - len(self.table.block_ids))

    def live_tokens(self) -> int:
        """KV rows currently resident in the pool (0 while swapped out)."""
        return 0 if self.is_swapped or self._released else self.length

    # -- adoption (cross-request reuse) --------------------------------------

    def adopt_blocks(self, block_ids: list[int], n_tokens: int) -> None:
        """Seed an empty cache with shared pages from the prefix index.

        The caller (the warm-prepare path) has already taken one reference
        per page on this cache's behalf; adoption transfers those references
        into the block table and declares the covered token rows valid in
        every layer.  Only page-aligned full pages can be adopted.
        """
        if self.table.block_ids or self.length or self._packed:
            raise RuntimeError("blocks can only be adopted into an empty cache")
        if n_tokens != len(block_ids) * self.table.block_size:
            raise ValueError(
                f"{len(block_ids)} adopted pages cover "
                f"{len(block_ids) * self.table.block_size} rows, not {n_tokens}"
            )
        if n_tokens > self.capacity:
            raise ValueError(f"adopted rows exceed capacity {self.capacity}")
        for block_id in block_ids:
            self.pool.get(block_id)  # fail fast on unknown ids
        self.table.block_ids = list(block_ids)
        self._layer_lengths = [n_tokens] * self.n_layers
        self.n_adopted_blocks = len(block_ids)
        self._content_version += 1
        self._context_version += 1

    # -- writes --------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._released:
            raise RuntimeError("cache was released back to the pool")
        if self.is_swapped:
            raise RuntimeError("cache is swapped out; swap it in before use")

    def _writable_block(self, index: int) -> Block:
        """The page behind table slot ``index``, privately owned.

        Writing to a shared page first copies it (copy-on-write), so decode
        tails and fake-quant overwrites can never mutate storage another
        sequence or the prefix index still reads.
        """
        block_id = self.table.block_ids[index]
        new_id = self.pool.copy_on_write(block_id)
        if new_id != block_id:
            self.table.block_ids[index] = new_id
            self._content_version += 1
            self._context_version += 1
        return self.pool.get(new_id)

    def append_layer(self, layer_index: int, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append rows to one layer, allocating pages on demand."""
        self._check_writable()
        k_new = np.asarray(k_new, dtype=np.float32)
        v_new = np.asarray(v_new, dtype=np.float32)
        if k_new.shape != v_new.shape:
            raise ValueError(f"K/V shape mismatch: {k_new.shape} vs {v_new.shape}")
        n = k_new.shape[0]
        start = self._layer_lengths[layer_index]
        if start + n > self.capacity:
            raise ValueError(
                f"cache overflow: length {start} + {n} exceeds capacity {self.capacity}"
            )
        needed = BlockTable.blocks_for_tokens(start + n, self.table.block_size)
        while len(self.table.block_ids) < needed:
            self.table.block_ids.append(self.pool.allocate())
        written = 0
        while written < n:
            index, offset = self.table.locate(start + written)
            take = min(n - written, self.table.block_size - offset)
            block = self._writable_block(index)
            block.write(
                layer_index,
                offset,
                k_new[written : written + take],
                v_new[written : written + take],
            )
            written += take
        self._layer_lengths[layer_index] = start + n

    def truncate(self, n_tokens: int) -> None:
        """Roll the decode tail back to ``n_tokens`` rows (all layers).

        This is the speculative-decoding rollback: a verify forward
        appended rows for every drafted token, and the rejected tail must
        vanish as if it had never been computed.  Only rows *past the
        context region* can be truncated — context pages may be packed,
        shared with other sequences or adopted from the prefix index, and
        none of those are this sequence's to shrink.  The decode tail, by
        contrast, was appended through :meth:`append_layer`, whose
        copy-on-write discipline guarantees the affected pages are
        privately owned: pages left wholly beyond the new length are
        released back to the pool, and the stale rows of the straddling
        page are simply overwritten by the next append.
        """
        self._check_writable()
        if n_tokens < self.n_context:
            raise ValueError(
                f"cannot truncate into the context region "
                f"({n_tokens} < {self.n_context})"
            )
        if n_tokens > min(self._layer_lengths):
            raise ValueError(
                f"cannot truncate to {n_tokens}: a layer holds only "
                f"{min(self._layer_lengths)} rows"
            )
        keep = BlockTable.blocks_for_tokens(n_tokens, self.table.block_size)
        for block_id in self.table.block_ids[keep:]:
            self.pool.release(block_id)
        del self.table.block_ids[keep:]
        self._layer_lengths = [n_tokens] * self.n_layers
        self._gather_buffers.clear()
        self._content_version += 1

    # -- reads ---------------------------------------------------------------

    def _check_readable(self) -> None:
        if self._released:
            raise RuntimeError("cache was released back to the pool")
        if self.is_swapped:
            raise RuntimeError("cache is swapped out; swap it in before use")

    def gather_context(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy read of one layer's context-region pages.

        Returns float32 ``(n, h, d)`` K and V covering every page that lies
        wholly inside the context region (``n`` is ``n_context`` rounded
        down to a page boundary; the page straddling the context/decode
        boundary keeps taking live appends and is gathered separately).
        This is the batched decode path's hot read: once a request's
        context is packed those pages never change again, so the gather —
        including the per-page dequantization of the packed runs — is
        memoized against ``(n_blocks, _context_version)``, a pair of plain
        counters this cache already maintains.  A warm hit is therefore two
        integer compares — no per-page ``pool.get`` walk to rebuild a key
        tuple, which profiling showed dominating the hit path.  Every
        mutation that can reach a context page (COW fork, context
        overwrite, repack, adoption) bumps ``_context_version``; a swap
        round-trip clears the memo outright.

        Callers must treat the returned arrays as read-only.
        """
        self._check_readable()
        bs = self.table.block_size
        n_rows = min(self.n_context, self._layer_lengths[layer_index])
        n_blocks = n_rows // bs
        if n_blocks == 0:
            empty = np.empty((0, self.n_kv_heads, self.head_dim), dtype=np.float32)
            return empty, empty
        key = (n_blocks, self._context_version)
        memo = self._context_memo.get(layer_index)
        if memo is not None and memo[0] == key:
            return memo[1]
        with profiling_span("gather"):
            k = np.empty(
                (n_blocks * bs, self.n_kv_heads, self.head_dim), dtype=np.float32
            )
            v = np.empty_like(k)
            for index, block_id in enumerate(self.table.block_ids[:n_blocks]):
                block_k, block_v = self.pool.get(block_id).gather(layer_index, bs)
                k[index * bs : (index + 1) * bs] = block_k
                v[index * bs : (index + 1) * bs] = block_v
        result = (k, v)
        self._context_memo[layer_index] = (key, result)
        return result

    def gather_layer(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialise one layer's valid rows as float32 ``(length, h, d)``.

        Reads are served from a per-layer growing scratch buffer
        (:class:`_GatherBuffer`): an unchanged layer returns the same view
        tuple with zero copies, and a layer that merely *grew* (the decode
        step's append) copies only the rows appended since the last call —
        appended rows are always full-precision, so a decode step no longer
        re-materialises (or re-dequantizes) its whole history per layer.
        Only a content mutation (COW fork, overwrite, packing, truncation,
        adoption — anything that bumps ``_content_version``) rebuilds the
        buffer from scratch, with the immutable context prefix coming from
        the :meth:`gather_context` memo as one memcpy.  Rebuilds allocate
        *fresh* arrays: views handed out earlier are never rewritten in
        place, so callers may safely hold them across steps (read-only).
        """
        self._check_readable()
        length = self._layer_lengths[layer_index]
        buffer = self._gather_buffers.get(layer_index)
        if buffer is not None and buffer.version == self._content_version:
            if buffer.valid == length:
                return buffer.views
            if buffer.valid < length <= buffer.k.shape[0]:
                with profiling_span("gather"):
                    self._fill_rows(buffer, layer_index, buffer.valid, length)
                buffer.valid = length
                buffer.views = (buffer.k[:length], buffer.v[:length])
                if buffer.k_t is not None:
                    buffer.mirror_views = (
                        buffer.k_t[:, :, :length],
                        buffer.v_t[:, :length, :],
                    )
                return buffer.views
        with profiling_span("gather"):
            buffer = self._rebuild_buffer(layer_index, length)
        self._gather_buffers[layer_index] = buffer
        return buffer.views

    def layer_mirrors(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Head-major transposed views of one layer's gathered K/V.

        Returns ``(h, d, length)`` keys and ``(h, length, d)`` values — the
        exact operand layout of attention's per-head GEMMs — as views of
        incrementally-maintained mirror buffers, so the attend path avoids
        its two per-call ``ascontiguousarray`` transpose copies of the full
        history.  The mirrors are built lazily on first request and kept in
        sync by :meth:`gather_layer`; the same read-only contract applies.
        """
        self.gather_layer(layer_index)  # sync buffer (and mirrors) first
        buffer = self._gather_buffers[layer_index]
        if buffer.k_t is None:
            with profiling_span("gather"):
                capacity = buffer.k.shape[0]
                h, d = self.n_kv_heads, self.head_dim
                valid = buffer.valid
                buffer.k_t = np.empty((h, d, capacity), dtype=np.float32)
                buffer.v_t = np.empty((h, capacity, d), dtype=np.float32)
                buffer.k_t[:, :, :valid] = buffer.k[:valid].transpose(1, 2, 0)
                buffer.v_t[:, :valid, :] = buffer.v[:valid].transpose(1, 0, 2)
                buffer.mirror_views = (
                    buffer.k_t[:, :, :valid],
                    buffer.v_t[:, :valid, :],
                )
        return buffer.mirror_views

    def _fill_rows(
        self, buffer: _GatherBuffer, layer_index: int, start: int, stop: int
    ) -> None:
        """Copy rows ``[start, stop)`` from the pages into ``buffer``.

        Only called for rows appended since the buffer was last synced at
        the *same* ``_content_version``: such rows were written exclusively
        by :meth:`append_layer` (anything else bumps the version), so they
        are plain full-precision rows — no packed-run overlay to decode.
        """
        bs = self.table.block_size
        row = start
        while row < stop:
            index, offset = self.table.locate(row)
            take = min(stop - row, bs - offset)
            block = self.pool.get(self.table.block_ids[index])
            buffer.k[row : row + take] = block.fp_k[layer_index, offset : offset + take]
            buffer.v[row : row + take] = block.fp_v[layer_index, offset : offset + take]
            row += take
        if buffer.k_t is not None:
            buffer.k_t[:, :, start:stop] = buffer.k[start:stop].transpose(1, 2, 0)
            buffer.v_t[:, start:stop, :] = buffer.v[start:stop].transpose(1, 0, 2)

    def _rebuild_buffer(self, layer_index: int, length: int) -> _GatherBuffer:
        """Gather the whole layer into a fresh buffer with growth headroom."""
        bs = self.table.block_size
        # Geometric headroom: the buffer absorbs at least 4 pages (or half
        # the current length) of future appends before the next rebuild, so
        # long decodes re-gather O(log n) times, not every ``slack`` rows.
        slack = max(4 * bs, length // 2)
        capacity = max(length, min(self.capacity, length + slack))
        k = np.empty((capacity, self.n_kv_heads, self.head_dim), dtype=np.float32)
        v = np.empty_like(k)
        context_k, context_v = self.gather_context(layer_index)
        done = min(context_k.shape[0], length)
        k[:done] = context_k[:done]
        v[:done] = context_v[:done]
        for block_id in self.table.block_ids[done // bs :]:
            if done >= length:
                break
            take = min(bs, length - done)
            block_k, block_v = self.pool.get(block_id).gather(layer_index, take)
            k[done : done + take] = block_k
            v[done : done + take] = block_v
            done += take
        return _GatherBuffer(k, v, length, self._content_version)

    # -- the ModelKVCache surface used by quantizers -------------------------

    def mark_context(self, n_context: int) -> None:
        """Record how many leading tokens belong to the (quantizable) context."""
        if n_context < 0 or n_context > self.length:
            raise ValueError(f"n_context must be in [0, {self.length}], got {n_context}")
        self.n_context = n_context

    def context_kv(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of the context-region K and V of one layer."""
        k, v = self.gather_layer(layer_index)
        return k[: self.n_context].copy(), v[: self.n_context].copy()

    def replace_context_kv(
        self, layer_index: int, k_new: np.ndarray, v_new: np.ndarray
    ) -> None:
        """Overwrite the context rows of one layer (fake-quant fallback path).

        Quantizers without a packed-storage encoder keep their ``apply``
        semantics on the paged cache: the context pages simply hold the
        fake-quantized floats at full precision.
        """
        self._check_writable()
        if self._packed:
            raise RuntimeError("context was packed; it can no longer be overwritten")
        if k_new.shape[0] != self.n_context or v_new.shape[0] != self.n_context:
            raise ValueError(f"expected {self.n_context} context rows, got {k_new.shape[0]}")
        k_new = np.asarray(k_new, dtype=np.float32)
        v_new = np.asarray(v_new, dtype=np.float32)
        done = 0
        for index in range(len(self.table.block_ids)):
            if done >= self.n_context:
                break
            take = min(self.table.block_size, self.n_context - done)
            block = self._writable_block(index)
            block.write(layer_index, 0, k_new[done : done + take], v_new[done : done + take])
            done += take
        self._content_version += 1
        self._context_version += 1

    # -- packing -------------------------------------------------------------

    def pack_context(
        self,
        encodings: list[tuple[TensorEncoding, TensorEncoding]],
        *,
        first_block: int = 0,
    ) -> None:
        """Convert the context region's pages to packed quantized storage.

        ``encodings`` holds one ``(K, V)`` :class:`TensorEncoding` pair per
        layer, covering exactly the ``n_context`` leading tokens.  Each page
        overlapping the context packs its quantized rows per precision run;
        FP16-marked rows stay as float rows inside the page.

        ``first_block`` skips the leading pages — a warm request whose
        prefix matched the index adopted those pages already packed, so only
        the unmatched tail is encoded and compacted (the encodings' code
        rows below ``first_block * block_size`` may be blank).

        Every encoding must carry the *same* ``token_bits`` (the plan's
        per-token precision assignment): a page row's full-precision copy is
        compacted for all layers and tensors at once, so a per-tensor
        disagreement about which rows are quantized would silently zero
        rows some tensor still reads as floats.
        """
        self._check_writable()
        if self._packed:
            raise RuntimeError("context is already packed")
        if not 0 <= first_block <= len(self.table.block_ids):
            raise ValueError(f"first_block {first_block} outside the block table")
        if len(encodings) != self.n_layers:
            raise ValueError(f"expected {self.n_layers} layer encodings, got {len(encodings)}")
        reference_bits = encodings[0][0].token_bits if encodings else None
        for k_enc, v_enc in encodings:
            for enc in (k_enc, v_enc):
                if enc.n_tokens != self.n_context:
                    raise ValueError(
                        f"encoding covers {enc.n_tokens} tokens; context has {self.n_context}"
                    )
                if not np.array_equal(enc.token_bits, reference_bits):
                    raise ValueError(
                        "all context encodings must share one per-token bit "
                        "assignment (per-layer/per-tensor disagreement would "
                        "compact rows another tensor still stores as floats)"
                    )
        bs = self.table.block_size
        for index in range(first_block, len(self.table.block_ids)):
            start = index * bs
            if start >= self.n_context:
                break
            stop = min(start + bs, self.n_context)
            rows = np.arange(stop - start, dtype=np.int64)
            block = self._writable_block(index)
            bytes_before = block.storage_bytes()
            for layer_index, (k_enc, v_enc) in enumerate(encodings):
                for tensor, enc in (("k", k_enc), ("v", v_enc)):
                    if not enc.codecs:
                        continue
                    bits = enc.token_bits[start:stop]
                    pack_block_runs(
                        block,
                        layer_index,
                        tensor,
                        rows,
                        bits,
                        enc.codes[start:stop],
                        enc.meta[start:stop],
                        enc.codecs,
                    )
            if reference_bits is not None:
                quantized = rows[reference_bits[start:stop] != int(BitWidth.FP16)]
            else:
                quantized = rows[:0]
            block.seal_quantized_rows(quantized, stop - start)
            self.pool.note_block_repacked(block.storage_bytes() - bytes_before)
        self._shared_metadata_bytes = sum(
            enc.shared_bytes() for pair in encodings for enc in pair
        )
        self._packed = True
        self._content_version += 1
        self._context_version += 1

    # -- preemption: swap and release ----------------------------------------

    def swap_out(self) -> None:
        """Detach exclusively-owned pages to the host store, freeing capacity.

        Pages shared with other sequences or the prefix index (refcount
        above one) stay resident: they are live storage of another reader,
        and this sequence's reference alone keeps them addressable for the
        later :meth:`swap_in`.  Only the private pages move to host memory.
        """
        self._check_writable()
        state: list[tuple[str, Block | int]] = []
        for block_id in self.table.block_ids:
            if self.pool.refcount(block_id) > 1:
                state.append(("pool", block_id))
            else:
                state.append(("host", self.pool.swap_out(block_id)))
        self._swap_state = state
        self.table.block_ids = []
        # A swapped sequence holds no device pages; drop the gather scratch
        # and memos too (host pages come back under fresh ids and must be
        # re-gathered after swap_in).
        self._gather_buffers.clear()
        self._context_memo.clear()

    def swap_in(self) -> None:
        """Restore the swapped pages into the pool (fresh ids for host pages).

        Capacity is checked up front so the restore is all-or-nothing: a
        pool without room for every detached page raises before any page
        (or swap counter) moves, leaving the cache swapped and retryable.
        Shared pages that never left the pool are re-linked in place.
        """
        if self._released:
            raise RuntimeError("cache was released back to the pool")
        if not self.is_swapped:
            raise RuntimeError("cache is not swapped out")
        n_host = sum(1 for kind, _ in self._swap_state if kind == "host")
        if not self.pool.can_allocate(n_host):
            raise PoolExhausted(
                f"pool cannot hold the {n_host} swapped pages of this sequence"
            )
        self.table.block_ids = [
            entry if kind == "pool" else self.pool.swap_in(entry)
            for kind, entry in self._swap_state
        ]
        self._swap_state = None

    def release(self) -> None:
        """Return every page reference (or drop the swap copy); idempotent.

        Shared pages survive as long as another sequence or the prefix
        index still holds them — release only drops *this* sequence's
        references.
        """
        if self._released:
            return
        if self.is_swapped:
            for kind, entry in self._swap_state:
                if kind == "pool":
                    self.pool.release(entry)
            self._swap_state = None
        else:
            for block_id in self.table.block_ids:
                self.pool.release(block_id)
        self.table.block_ids = []
        self._gather_buffers.clear()
        self._context_memo.clear()
        self._released = True

    # -- measured accounting -------------------------------------------------

    def _row_fp16_bytes(self) -> int:
        return bytes_for_elements(
            2 * self.n_layers * self.n_kv_heads * self.head_dim, BitWidth.FP16
        )

    def measured_bytes(self) -> dict[str, int]:
        """Walk this sequence's pages and report measured resident bytes.

        Returns a breakdown under the device storage model:

        ``context_bytes``
            Packed payload + per-token metadata + FP16-kept context rows +
            once-per-sequence shared metadata (per-channel scales, nuq
            codebooks).
        ``generated_bytes``
            FP16-charged rows past the context — query/generated tokens plus
            the reserved-but-unfilled tail of the last page (internal
            fragmentation, which the analytic estimate cannot see).
        ``context_fp16_bytes``
            What the same context rows would cost entirely at FP16, for
            compression ratios.  Row-granular like ``context_bytes`` (the
            page-granularity overhead of the straddling last page sits in
            ``generated_bytes`` for every method), so an unquantized cache
            reports a ratio of exactly 1.0 against itself.
        """
        row_bytes = self._row_fp16_bytes()
        bs = self.table.block_size
        context_bytes = self._shared_metadata_bytes if self._packed else 0
        generated_bytes = 0
        if self.is_swapped:
            blocks = [
                entry if kind == "host" else self.pool.get(entry)
                for kind, entry in self._swap_state
            ]
        else:
            blocks = [self.pool.get(bid) for bid in self.table.block_ids]
        for index, block in enumerate(blocks):
            start = index * bs
            ctx_rows = min(max(self.n_context - start, 0), bs)
            ctx_fp_rows = ctx_rows - block.n_quantized_rows
            context_bytes += block.packed_bytes() + ctx_fp_rows * row_bytes
            generated_bytes += (bs - ctx_rows) * row_bytes
        return {
            "context_bytes": context_bytes,
            "generated_bytes": generated_bytes,
            "total_bytes": context_bytes + generated_bytes,
            "context_fp16_bytes": self.n_context * row_bytes,
            "n_blocks": len(blocks),
        }

"""Paged KV cache: a sequence's view onto the shared block pool.

:class:`PagedKVCache` is a drop-in replacement for
:class:`~repro.model.kv_cache.ModelKVCache` whose storage lives in a shared
:class:`~repro.kvpool.pool.BlockPool` instead of private contiguous arrays.
Each sequence holds a :class:`BlockTable` mapping logical token positions to
pages; per-layer :class:`PagedLayerView` objects expose the same
``append``/``keys``/``values`` surface the attention layer drives, so the
transformer runs unmodified on either cache.

After prefill, the serving backend packs the context region
(:meth:`PagedKVCache.pack_context`): quantized token rows become bit-packed
codes + scales inside their pages, FP16-marked rows and all generated
tokens stay full precision — matching the paper, which never quantizes
decode-phase tokens.  Gathering dequantizes per page and is bit-for-bit
identical to the dense fake-quant cache (see :mod:`repro.kvpool.codecs`).

Preemption uses the pool's swap interface: :meth:`swap_out` detaches every
*exclusively-owned* page to a host-side store (freeing pool capacity for
other sequences) and :meth:`swap_in` restores them, so a preempted request
resumes without any recomputation.  Pages shared with other sequences or
the prefix index stay resident across the round trip — they are someone
else's storage too and are never evicted under a live reader.

Cross-request reuse enters through :meth:`PagedKVCache.adopt_blocks`: a
warm request starts its block table with retained references to already
packed pages from the prefix index (:mod:`repro.kvpool.prefix`) and only
allocates fresh pages for the unmatched tail.  All writes are
copy-on-write: touching a row of a shared page first gives this sequence a
private copy, so one sequence's decode tail can never corrupt a page
another request is still reading.
"""

from __future__ import annotations

import numpy as np

from repro.kvpool.codecs import TensorEncoding
from repro.kvpool.pool import Block, BlockPool, PoolExhausted, pack_block_runs
from repro.quant.dtypes import BitWidth, bytes_for_elements


class BlockTable:
    """Maps a sequence's logical token positions to pool pages."""

    def __init__(self, block_size: int):
        self.block_size = block_size
        self.block_ids: list[int] = []

    def __len__(self) -> int:
        return len(self.block_ids)

    @staticmethod
    def blocks_for_tokens(n_tokens: int, block_size: int) -> int:
        """Pages needed to hold ``n_tokens`` rows."""
        return -(-n_tokens // block_size)

    def locate(self, position: int) -> tuple[int, int]:
        """``(table index, row offset)`` of a logical token position."""
        return position // self.block_size, position % self.block_size

    def reserved_tokens(self) -> int:
        """Token rows reserved by the mapped pages."""
        return len(self.block_ids) * self.block_size


class PagedLayerView:
    """One layer's :class:`~repro.model.kv_cache.LayerKVCache`-shaped view."""

    def __init__(self, cache: "PagedKVCache", layer_index: int):
        self._cache = cache
        self._layer = layer_index

    @property
    def n_kv_heads(self) -> int:
        return self._cache.n_kv_heads

    @property
    def head_dim(self) -> int:
        return self._cache.head_dim

    @property
    def capacity(self) -> int:
        return self._cache.capacity

    @property
    def length(self) -> int:
        return self._cache.layer_length(self._layer)

    @property
    def k(self) -> np.ndarray:
        """Valid K rows, gathered (and dequantized) from the pages."""
        return self.keys()

    @property
    def v(self) -> np.ndarray:
        """Valid V rows, gathered (and dequantized) from the pages."""
        return self.values()

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append ``(n, n_kv_heads, head_dim)`` rows to this layer's pages."""
        self._cache.append_layer(self._layer, k_new, v_new)

    def keys(self) -> np.ndarray:
        return self._cache.gather_layer(self._layer)[0]

    def values(self) -> np.ndarray:
        return self._cache.gather_layer(self._layer)[1]


class PagedKVCache:
    """KV cache of one sequence, stored as pages of a shared block pool."""

    def __init__(self, pool: BlockPool, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        self.pool = pool
        self.capacity = capacity
        self.n_layers = pool.n_layers
        self.n_kv_heads = pool.n_kv_heads
        self.head_dim = pool.head_dim
        self.table = BlockTable(pool.block_size)
        self.layers = [PagedLayerView(self, i) for i in range(pool.n_layers)]
        self.n_context = 0
        self._layer_lengths = [0] * pool.n_layers
        self._packed = False
        self._shared_metadata_bytes = 0
        #: While swapped out: one entry per table slot, either
        #: ``("host", Block)`` for a detached exclusive page or
        #: ``("pool", block_id)`` for a shared page that stayed resident.
        self._swap_state: list[tuple[str, Block | int]] | None = None
        self._released = False
        #: Leading pages adopted from the prefix index (shared, pre-packed).
        self.n_adopted_blocks = 0
        #: Per-layer memo of the last gather: ``(length, version, (k, v))``.
        #: ``keys()``/``values()`` are called back to back by attention on
        #: every decode step; without the memo each step would materialise
        #: and dequantize the full context twice per layer.
        self._gather_memo: dict[int, tuple[int, int, tuple[np.ndarray, np.ndarray]]] = {}
        #: Per-layer memo of the gathered context-region pages, keyed by the
        #: exact ``(block_id, Block.version)`` tuple of the covered pages —
        #: see :meth:`gather_context`.
        self._context_memo: dict[
            int, tuple[tuple[tuple[int, int], ...], tuple[np.ndarray, np.ndarray]]
        ] = {}
        self._content_version = 0

    # -- geometry ------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of cached tokens (the most-advanced layer during a pass)."""
        return max(self._layer_lengths)

    @property
    def n_blocks(self) -> int:
        return len(self.table)

    @property
    def is_swapped(self) -> bool:
        """Whether the pages currently live in the host-side swap store."""
        return self._swap_state is not None

    def layer_length(self, layer_index: int) -> int:
        return self._layer_lengths[layer_index]

    def layer(self, index: int) -> PagedLayerView:
        """Return the view of layer ``index``."""
        return self.layers[index]

    def has_capacity(self) -> bool:
        """Whether one more decode token can be absorbed."""
        if self._released or self.is_swapped or self.length >= self.capacity:
            return False
        return self.length < self.table.reserved_tokens() or self.pool.can_allocate(1)

    def next_token_block_cost(self) -> int:
        """Pool pages the *next* decode token will newly allocate (0 or 1).

        The batched decode round reserves this many pages between a
        sequence's capacity check and its deferred fused forward, so later
        sequences in the round observe the same pool availability the
        sequential check-then-allocate interleaving would produce.
        """
        return self.block_cost_for_tokens(1)

    def block_cost_for_tokens(self, n_tokens: int) -> int:
        """Pool pages appending ``n_tokens`` more rows would newly allocate.

        The speculative planner sizes its draft window with this: a verify
        run appends up to ``k + 1`` rows at once, and the engine both
        checks :meth:`~repro.kvpool.pool.BlockPool.can_allocate` and
        reserves this many pages before deferring the fused forward, so
        drafting can never make a round claim pages a sequential
        one-token-per-step engine would not have been granted.
        """
        if n_tokens < 0:
            raise ValueError(f"n_tokens must be >= 0, got {n_tokens}")
        needed = BlockTable.blocks_for_tokens(
            self.length + n_tokens, self.table.block_size
        )
        return max(0, needed - len(self.table.block_ids))

    def live_tokens(self) -> int:
        """KV rows currently resident in the pool (0 while swapped out)."""
        return 0 if self.is_swapped or self._released else self.length

    # -- adoption (cross-request reuse) --------------------------------------

    def adopt_blocks(self, block_ids: list[int], n_tokens: int) -> None:
        """Seed an empty cache with shared pages from the prefix index.

        The caller (the warm-prepare path) has already taken one reference
        per page on this cache's behalf; adoption transfers those references
        into the block table and declares the covered token rows valid in
        every layer.  Only page-aligned full pages can be adopted.
        """
        if self.table.block_ids or self.length or self._packed:
            raise RuntimeError("blocks can only be adopted into an empty cache")
        if n_tokens != len(block_ids) * self.table.block_size:
            raise ValueError(
                f"{len(block_ids)} adopted pages cover "
                f"{len(block_ids) * self.table.block_size} rows, not {n_tokens}"
            )
        if n_tokens > self.capacity:
            raise ValueError(f"adopted rows exceed capacity {self.capacity}")
        for block_id in block_ids:
            self.pool.get(block_id)  # fail fast on unknown ids
        self.table.block_ids = list(block_ids)
        self._layer_lengths = [n_tokens] * self.n_layers
        self.n_adopted_blocks = len(block_ids)
        self._content_version += 1

    # -- writes --------------------------------------------------------------

    def _check_writable(self) -> None:
        if self._released:
            raise RuntimeError("cache was released back to the pool")
        if self.is_swapped:
            raise RuntimeError("cache is swapped out; swap it in before use")

    def _writable_block(self, index: int) -> Block:
        """The page behind table slot ``index``, privately owned.

        Writing to a shared page first copies it (copy-on-write), so decode
        tails and fake-quant overwrites can never mutate storage another
        sequence or the prefix index still reads.
        """
        block_id = self.table.block_ids[index]
        new_id = self.pool.copy_on_write(block_id)
        if new_id != block_id:
            self.table.block_ids[index] = new_id
            self._content_version += 1
        return self.pool.get(new_id)

    def append_layer(self, layer_index: int, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append rows to one layer, allocating pages on demand."""
        self._check_writable()
        k_new = np.asarray(k_new, dtype=np.float32)
        v_new = np.asarray(v_new, dtype=np.float32)
        if k_new.shape != v_new.shape:
            raise ValueError(f"K/V shape mismatch: {k_new.shape} vs {v_new.shape}")
        n = k_new.shape[0]
        start = self._layer_lengths[layer_index]
        if start + n > self.capacity:
            raise ValueError(
                f"cache overflow: length {start} + {n} exceeds capacity {self.capacity}"
            )
        needed = BlockTable.blocks_for_tokens(start + n, self.table.block_size)
        while len(self.table.block_ids) < needed:
            self.table.block_ids.append(self.pool.allocate())
        written = 0
        while written < n:
            index, offset = self.table.locate(start + written)
            take = min(n - written, self.table.block_size - offset)
            block = self._writable_block(index)
            block.write(
                layer_index,
                offset,
                k_new[written : written + take],
                v_new[written : written + take],
            )
            written += take
        self._layer_lengths[layer_index] = start + n

    def truncate(self, n_tokens: int) -> None:
        """Roll the decode tail back to ``n_tokens`` rows (all layers).

        This is the speculative-decoding rollback: a verify forward
        appended rows for every drafted token, and the rejected tail must
        vanish as if it had never been computed.  Only rows *past the
        context region* can be truncated — context pages may be packed,
        shared with other sequences or adopted from the prefix index, and
        none of those are this sequence's to shrink.  The decode tail, by
        contrast, was appended through :meth:`append_layer`, whose
        copy-on-write discipline guarantees the affected pages are
        privately owned: pages left wholly beyond the new length are
        released back to the pool, and the stale rows of the straddling
        page are simply overwritten by the next append.
        """
        self._check_writable()
        if n_tokens < self.n_context:
            raise ValueError(
                f"cannot truncate into the context region "
                f"({n_tokens} < {self.n_context})"
            )
        if n_tokens > min(self._layer_lengths):
            raise ValueError(
                f"cannot truncate to {n_tokens}: a layer holds only "
                f"{min(self._layer_lengths)} rows"
            )
        keep = BlockTable.blocks_for_tokens(n_tokens, self.table.block_size)
        for block_id in self.table.block_ids[keep:]:
            self.pool.release(block_id)
        del self.table.block_ids[keep:]
        self._layer_lengths = [n_tokens] * self.n_layers
        self._gather_memo.clear()
        self._content_version += 1

    # -- reads ---------------------------------------------------------------

    def _check_readable(self) -> None:
        if self._released:
            raise RuntimeError("cache was released back to the pool")
        if self.is_swapped:
            raise RuntimeError("cache is swapped out; swap it in before use")

    def gather_context(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy read of one layer's context-region pages.

        Returns float32 ``(n, h, d)`` K and V covering every page that lies
        wholly inside the context region (``n`` is ``n_context`` rounded
        down to a page boundary; the page straddling the context/decode
        boundary keeps taking live appends and is gathered separately).
        This is the batched decode path's hot read: once a request's
        context is packed those pages never change again, so the gather —
        including the per-page dequantization of the packed runs — is
        memoized against the exact ``(block_id, Block.version)`` tuple of
        the covered pages and repeated calls return the *same* arrays
        without touching the pool.  Any COW fork, repack, in-place
        overwrite or swap round-trip changes the key and re-gathers.

        Callers must treat the returned arrays as read-only.
        """
        self._check_readable()
        bs = self.table.block_size
        n_rows = min(self.n_context, self._layer_lengths[layer_index])
        n_blocks = n_rows // bs
        if n_blocks == 0:
            empty = np.empty((0, self.n_kv_heads, self.head_dim), dtype=np.float32)
            return empty, empty
        key = tuple(
            (block_id, self.pool.get(block_id).version)
            for block_id in self.table.block_ids[:n_blocks]
        )
        memo = self._context_memo.get(layer_index)
        if memo is not None and memo[0] == key:
            return memo[1]
        k = np.empty((n_blocks * bs, self.n_kv_heads, self.head_dim), dtype=np.float32)
        v = np.empty_like(k)
        for index, block_id in enumerate(self.table.block_ids[:n_blocks]):
            block_k, block_v = self.pool.get(block_id).gather(layer_index, bs)
            k[index * bs : (index + 1) * bs] = block_k
            v[index * bs : (index + 1) * bs] = block_v
        result = (k, v)
        self._context_memo[layer_index] = (key, result)
        return result

    def gather_layer(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialise one layer's valid rows as float32 ``(length, h, d)``.

        The most recent gather per layer is memoized (invalidated by
        appends, overwrites and packing); callers treat the returned arrays
        as read-only views of the cache state.  On a miss the immutable
        context prefix comes from :meth:`gather_context` (a memcpy of the
        memoized arrays), so a decode step only pays to re-gather — and
        dequantize — the mutable tail pages its append just touched.
        """
        self._check_readable()
        length = self._layer_lengths[layer_index]
        memo = self._gather_memo.get(layer_index)
        if memo is not None and memo[0] == length and memo[1] == self._content_version:
            return memo[2]
        k = np.empty((length, self.n_kv_heads, self.head_dim), dtype=np.float32)
        v = np.empty_like(k)
        context_k, context_v = self.gather_context(layer_index)
        done = min(context_k.shape[0], length)
        k[:done] = context_k[:done]
        v[:done] = context_v[:done]
        bs = self.table.block_size
        for block_id in self.table.block_ids[done // bs :]:
            if done >= length:
                break
            take = min(bs, length - done)
            block_k, block_v = self.pool.get(block_id).gather(layer_index, take)
            k[done : done + take] = block_k
            v[done : done + take] = block_v
            done += take
        result = (k, v)
        self._gather_memo[layer_index] = (length, self._content_version, result)
        return result

    # -- the ModelKVCache surface used by quantizers -------------------------

    def mark_context(self, n_context: int) -> None:
        """Record how many leading tokens belong to the (quantizable) context."""
        if n_context < 0 or n_context > self.length:
            raise ValueError(f"n_context must be in [0, {self.length}], got {n_context}")
        self.n_context = n_context

    def context_kv(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of the context-region K and V of one layer."""
        k, v = self.gather_layer(layer_index)
        return k[: self.n_context].copy(), v[: self.n_context].copy()

    def replace_context_kv(
        self, layer_index: int, k_new: np.ndarray, v_new: np.ndarray
    ) -> None:
        """Overwrite the context rows of one layer (fake-quant fallback path).

        Quantizers without a packed-storage encoder keep their ``apply``
        semantics on the paged cache: the context pages simply hold the
        fake-quantized floats at full precision.
        """
        self._check_writable()
        if self._packed:
            raise RuntimeError("context was packed; it can no longer be overwritten")
        if k_new.shape[0] != self.n_context or v_new.shape[0] != self.n_context:
            raise ValueError(f"expected {self.n_context} context rows, got {k_new.shape[0]}")
        k_new = np.asarray(k_new, dtype=np.float32)
        v_new = np.asarray(v_new, dtype=np.float32)
        done = 0
        for index in range(len(self.table.block_ids)):
            if done >= self.n_context:
                break
            take = min(self.table.block_size, self.n_context - done)
            block = self._writable_block(index)
            block.write(layer_index, 0, k_new[done : done + take], v_new[done : done + take])
            done += take
        self._content_version += 1

    # -- packing -------------------------------------------------------------

    def pack_context(
        self,
        encodings: list[tuple[TensorEncoding, TensorEncoding]],
        *,
        first_block: int = 0,
    ) -> None:
        """Convert the context region's pages to packed quantized storage.

        ``encodings`` holds one ``(K, V)`` :class:`TensorEncoding` pair per
        layer, covering exactly the ``n_context`` leading tokens.  Each page
        overlapping the context packs its quantized rows per precision run;
        FP16-marked rows stay as float rows inside the page.

        ``first_block`` skips the leading pages — a warm request whose
        prefix matched the index adopted those pages already packed, so only
        the unmatched tail is encoded and compacted (the encodings' code
        rows below ``first_block * block_size`` may be blank).

        Every encoding must carry the *same* ``token_bits`` (the plan's
        per-token precision assignment): a page row's full-precision copy is
        compacted for all layers and tensors at once, so a per-tensor
        disagreement about which rows are quantized would silently zero
        rows some tensor still reads as floats.
        """
        self._check_writable()
        if self._packed:
            raise RuntimeError("context is already packed")
        if not 0 <= first_block <= len(self.table.block_ids):
            raise ValueError(f"first_block {first_block} outside the block table")
        if len(encodings) != self.n_layers:
            raise ValueError(f"expected {self.n_layers} layer encodings, got {len(encodings)}")
        reference_bits = encodings[0][0].token_bits if encodings else None
        for k_enc, v_enc in encodings:
            for enc in (k_enc, v_enc):
                if enc.n_tokens != self.n_context:
                    raise ValueError(
                        f"encoding covers {enc.n_tokens} tokens; context has {self.n_context}"
                    )
                if not np.array_equal(enc.token_bits, reference_bits):
                    raise ValueError(
                        "all context encodings must share one per-token bit "
                        "assignment (per-layer/per-tensor disagreement would "
                        "compact rows another tensor still stores as floats)"
                    )
        bs = self.table.block_size
        for index in range(first_block, len(self.table.block_ids)):
            start = index * bs
            if start >= self.n_context:
                break
            stop = min(start + bs, self.n_context)
            rows = np.arange(stop - start, dtype=np.int64)
            block = self._writable_block(index)
            bytes_before = block.storage_bytes()
            for layer_index, (k_enc, v_enc) in enumerate(encodings):
                for tensor, enc in (("k", k_enc), ("v", v_enc)):
                    if not enc.codecs:
                        continue
                    bits = enc.token_bits[start:stop]
                    pack_block_runs(
                        block,
                        layer_index,
                        tensor,
                        rows,
                        bits,
                        enc.codes[start:stop],
                        enc.meta[start:stop],
                        enc.codecs,
                    )
            if reference_bits is not None:
                quantized = rows[reference_bits[start:stop] != int(BitWidth.FP16)]
            else:
                quantized = rows[:0]
            block.seal_quantized_rows(quantized, stop - start)
            self.pool.note_block_repacked(block.storage_bytes() - bytes_before)
        self._shared_metadata_bytes = sum(
            enc.shared_bytes() for pair in encodings for enc in pair
        )
        self._packed = True
        self._content_version += 1

    # -- preemption: swap and release ----------------------------------------

    def swap_out(self) -> None:
        """Detach exclusively-owned pages to the host store, freeing capacity.

        Pages shared with other sequences or the prefix index (refcount
        above one) stay resident: they are live storage of another reader,
        and this sequence's reference alone keeps them addressable for the
        later :meth:`swap_in`.  Only the private pages move to host memory.
        """
        self._check_writable()
        state: list[tuple[str, Block | int]] = []
        for block_id in self.table.block_ids:
            if self.pool.refcount(block_id) > 1:
                state.append(("pool", block_id))
            else:
                state.append(("host", self.pool.swap_out(block_id)))
        self._swap_state = state
        self.table.block_ids = []
        # A swapped sequence holds no device pages; drop the gather scratch
        # too (host pages come back under fresh ids, re-keying the memo).
        self._gather_memo.clear()
        self._context_memo.clear()

    def swap_in(self) -> None:
        """Restore the swapped pages into the pool (fresh ids for host pages).

        Capacity is checked up front so the restore is all-or-nothing: a
        pool without room for every detached page raises before any page
        (or swap counter) moves, leaving the cache swapped and retryable.
        Shared pages that never left the pool are re-linked in place.
        """
        if self._released:
            raise RuntimeError("cache was released back to the pool")
        if not self.is_swapped:
            raise RuntimeError("cache is not swapped out")
        n_host = sum(1 for kind, _ in self._swap_state if kind == "host")
        if not self.pool.can_allocate(n_host):
            raise PoolExhausted(
                f"pool cannot hold the {n_host} swapped pages of this sequence"
            )
        self.table.block_ids = [
            entry if kind == "pool" else self.pool.swap_in(entry)
            for kind, entry in self._swap_state
        ]
        self._swap_state = None

    def release(self) -> None:
        """Return every page reference (or drop the swap copy); idempotent.

        Shared pages survive as long as another sequence or the prefix
        index still holds them — release only drops *this* sequence's
        references.
        """
        if self._released:
            return
        if self.is_swapped:
            for kind, entry in self._swap_state:
                if kind == "pool":
                    self.pool.release(entry)
            self._swap_state = None
        else:
            for block_id in self.table.block_ids:
                self.pool.release(block_id)
        self.table.block_ids = []
        self._gather_memo.clear()
        self._context_memo.clear()
        self._released = True

    # -- measured accounting -------------------------------------------------

    def _row_fp16_bytes(self) -> int:
        return bytes_for_elements(
            2 * self.n_layers * self.n_kv_heads * self.head_dim, BitWidth.FP16
        )

    def measured_bytes(self) -> dict[str, int]:
        """Walk this sequence's pages and report measured resident bytes.

        Returns a breakdown under the device storage model:

        ``context_bytes``
            Packed payload + per-token metadata + FP16-kept context rows +
            once-per-sequence shared metadata (per-channel scales, nuq
            codebooks).
        ``generated_bytes``
            FP16-charged rows past the context — query/generated tokens plus
            the reserved-but-unfilled tail of the last page (internal
            fragmentation, which the analytic estimate cannot see).
        ``context_fp16_bytes``
            What the same context rows would cost entirely at FP16, for
            compression ratios.  Row-granular like ``context_bytes`` (the
            page-granularity overhead of the straddling last page sits in
            ``generated_bytes`` for every method), so an unquantized cache
            reports a ratio of exactly 1.0 against itself.
        """
        row_bytes = self._row_fp16_bytes()
        bs = self.table.block_size
        context_bytes = self._shared_metadata_bytes if self._packed else 0
        generated_bytes = 0
        if self.is_swapped:
            blocks = [
                entry if kind == "host" else self.pool.get(entry)
                for kind, entry in self._swap_state
            ]
        else:
            blocks = [self.pool.get(bid) for bid in self.table.block_ids]
        for index, block in enumerate(blocks):
            start = index * bs
            ctx_rows = min(max(self.n_context - start, 0), bs)
            ctx_fp_rows = ctx_rows - block.n_quantized_rows
            context_bytes += block.packed_bytes() + ctx_fp_rows * row_bytes
            generated_bytes += (bs - ctx_rows) * row_bytes
        return {
            "context_bytes": context_bytes,
            "generated_bytes": generated_bytes,
            "total_bytes": context_bytes + generated_bytes,
            "context_fp16_bytes": self.n_context * row_bytes,
            "n_blocks": len(blocks),
        }

"""Cross-request prefix/chunk KV reuse: a radix index over packed pages.

Serving traffic repeats itself: hundreds of concurrent requests query the
same document, retrieval pipelines prepend the same instructions, and the
paper's chunk-level treatment of the context (equal-length chunks, per-chunk
bitwidths) makes the *packed quantized* context KV naturally shareable —
two requests whose leading tokens and per-token precision assignment agree
produce byte-identical pages.  :class:`PrefixCache` exploits that: after a
request's context pages are packed, its page-aligned full-context pages are
inserted into a radix tree keyed by *chained block hashes*; a later request
walks the tree before prefill storage is allocated and adopts the longest
matching run of pages instead of re-packing them.

Why a chained hash?  A context token's K/V rows depend on **every** token
before it (causal attention mixes the whole prefix into each hidden state),
so page ``i`` is only reusable when tokens ``[0, (i+1)·block_size)`` match
exactly.  Hashing each page together with its parent's hash encodes exactly
that dependency, the same construction vLLM uses for its prefix cache.  The
per-page hash additionally covers the page's per-token *bitwidths* — two
requests may agree on tokens but disagree on a chunk's precision (the
chunk-level search consults the query), and then the packed bytes differ.
Everything else the packed bytes depend on (method numerics, group sizes,
context-fitted scales) is folded into the *fingerprint* that roots the
tree — see :meth:`repro.baselines.base.KVCacheQuantizer.reuse_fingerprint`.

Eviction is reference-count aware: the index holds one pool reference per
cached page, so a page is only *evictable* while no sequence is reading it
(refcount exactly one).  The index registers itself as the pool's
reclaimer: when a bounded pool runs out of raw free pages, least-recently
used idle entries are dropped leaf-first — shared pages under a live reader
are never touched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.kvpool.pool import BlockPool


def content_hash(*parts) -> str:
    """Stable hex digest of strings / ints / numpy arrays (order-sensitive).

    Used both for the chained per-page hashes and for the context-fitted
    methods' fingerprints; Python's builtin ``hash`` is salted per process
    and therefore useless for anything meant to be reproducible.
    """
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            digest.update(part.encode("utf-8"))
        elif isinstance(part, (int, np.integer)):
            digest.update(int(part).to_bytes(8, "little", signed=True))
        elif isinstance(part, np.ndarray):
            digest.update(np.ascontiguousarray(part).tobytes())
        elif isinstance(part, (list, tuple)):
            digest.update(np.asarray(part, dtype=np.int64).tobytes())
        else:
            raise TypeError(f"cannot hash {type(part).__name__}")
        digest.update(b"\x1f")  # unambiguous separator between parts
    return digest.hexdigest()


def block_hashes(
    fingerprint: str,
    context_token_ids: Sequence[int],
    token_bits: np.ndarray,
    block_size: int,
) -> list[str]:
    """Chained hashes of every *full* context page of one request.

    ``hashes[i]`` identifies page ``i`` — it covers the quantization
    fingerprint, the token ids **and** per-token bitwidths of pages
    ``0..i``.  Pages straddling the context boundary (partially filled with
    query rows) are never shared and get no hash.
    """
    ids = np.asarray(list(context_token_ids), dtype=np.int64)
    bits = np.asarray(token_bits, dtype=np.int64)
    if ids.shape != bits.shape:
        raise ValueError(f"{ids.size} token ids but {bits.size} token bits")
    n_full = ids.size // block_size
    hashes: list[str] = []
    parent = content_hash(fingerprint)
    for i in range(n_full):
        lo, hi = i * block_size, (i + 1) * block_size
        parent = content_hash(parent, ids[lo:hi], bits[lo:hi])
        hashes.append(parent)
    return hashes


@dataclass
class PrefixCacheStats:
    """Counters accumulated over the lifetime of one :class:`PrefixCache`."""

    n_lookups: int = 0
    n_hit_blocks: int = 0
    n_missed_blocks: int = 0
    n_inserted_blocks: int = 0
    n_evicted_blocks: int = 0
    #: Measured bytes of matched pages the warm requests did not re-create.
    saved_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of looked-up pages served from the index."""
        total = self.n_hit_blocks + self.n_missed_blocks
        return self.n_hit_blocks / total if total else 0.0


class _RadixNode:
    """One cached page: a node of the per-fingerprint radix tree."""

    __slots__ = ("key", "block_id", "parent", "children", "stamp")

    def __init__(self, key: str, block_id: int, parent: "_RadixNode | None"):
        self.key = key
        self.block_id = block_id
        self.parent = parent
        self.children: dict[str, _RadixNode] = {}
        self.stamp = 0


class PrefixCache:
    """Radix index mapping chained block hashes to retained pool pages.

    Parameters
    ----------
    pool:
        The block pool the cached pages live in.  The index takes one
        reference per inserted page and registers itself as the pool's
        reclaimer so idle entries yield their pages under memory pressure.
    max_blocks:
        Optional cap on the number of cached pages; exceeding it evicts
        least-recently-used idle entries.  ``None`` leaves eviction entirely
        to pool pressure.
    """

    def __init__(self, pool: BlockPool, *, max_blocks: int | None = None):
        if max_blocks is not None and max_blocks < 1:
            raise ValueError(f"max_blocks must be >= 1, got {max_blocks}")
        self.pool = pool
        self.max_blocks = max_blocks
        self.stats = PrefixCacheStats()
        self._roots: dict[str, _RadixNode] = {}
        self._n_blocks = 0
        self._clock = 0
        #: Index-change subscribers (``on_insert(hashes)`` / ``on_evict(hashes)``).
        self._listeners: list = []
        pool.add_reclaimer(self)

    # -- change notification ---------------------------------------------------

    def add_listener(self, listener) -> None:
        """Subscribe to index membership changes.

        ``listener.on_insert(hashes)`` fires after pages are published under
        new hash keys; ``listener.on_evict(hashes)`` fires after entries are
        dropped (LRU eviction, pool-pressure reclaim or :meth:`clear`).  The
        chained hashes are globally unique (they cover the fingerprint), so
        a subscriber — e.g. a router's global prefix index — can mirror
        membership without knowing the tree structure.
        """
        self._listeners.append(listener)

    def _notify_insert(self, hashes: Sequence[str]) -> None:
        if hashes:
            for listener in self._listeners:
                listener.on_insert(list(hashes))

    def _notify_evict(self, hashes: Sequence[str]) -> None:
        if hashes:
            for listener in self._listeners:
                listener.on_evict(list(hashes))

    # -- queries -------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        """Number of pages currently held by the index."""
        return self._n_blocks

    def _walk(self, fingerprint: str, hashes: Sequence[str]) -> list[_RadixNode]:
        """Nodes along the longest cached prefix of ``hashes``."""
        node = self._roots.get(fingerprint)
        path: list[_RadixNode] = []
        for key in hashes:
            if node is None:
                break
            node = node.children.get(key)
            if node is None:
                break
            path.append(node)
        return path

    def peek(self, fingerprint: str, hashes: Sequence[str]) -> int:
        """Length (in pages) of the cached prefix, without touching state.

        The admission probe uses this: no references are taken and no LRU
        stamps move, so peeking never pins or rejuvenates entries.
        """
        return len(self._walk(fingerprint, hashes))

    # -- the warm path -------------------------------------------------------

    def match(self, fingerprint: str, hashes: Sequence[str]) -> list[int]:
        """Claim the longest cached prefix for one request.

        Returns the page ids of the matched run, **with one pool reference
        taken per page on the caller's behalf** — the caller adopts them
        into its block table and releases them through the normal cache
        release path.  Matched entries are stamped most-recently used.
        """
        self.stats.n_lookups += 1
        path = self._walk(fingerprint, hashes)
        self._clock += 1
        for node in path:
            self.pool.retain(node.block_id)
            node.stamp = self._clock
        self.stats.n_hit_blocks += len(path)
        self.stats.n_missed_blocks += len(hashes) - len(path)
        self.stats.saved_bytes += sum(
            self.pool.get(node.block_id).storage_bytes() for node in path
        )
        return [node.block_id for node in path]

    def insert(
        self, fingerprint: str, hashes: Sequence[str], block_ids: Sequence[int]
    ) -> int:
        """Publish a request's full-context pages under their hash chain.

        ``block_ids[i]`` must be the page whose content ``hashes[i]``
        describes.  Pages already present are left in place (first writer
        wins — both copies are byte-identical by construction); new entries
        take one pool reference each.  Returns the number of pages added.
        """
        if len(hashes) != len(block_ids):
            raise ValueError(f"{len(hashes)} hashes but {len(block_ids)} block ids")
        node = self._roots.get(fingerprint)
        if node is None and hashes:
            node = self._roots[fingerprint] = _RadixNode(fingerprint, -1, None)
        self._clock += 1
        inserted = 0
        fresh_keys: list[str] = []
        for key, block_id in zip(hashes, block_ids):
            child = node.children.get(key)
            if child is None:
                self.pool.retain(block_id)
                child = _RadixNode(key, block_id, node)
                node.children[key] = child
                self._n_blocks += 1
                inserted += 1
                fresh_keys.append(key)
            child.stamp = self._clock
            node = child
        self.stats.n_inserted_blocks += inserted
        self._notify_insert(fresh_keys)
        if self.max_blocks is not None and self._n_blocks > self.max_blocks:
            self.evict(self._n_blocks - self.max_blocks)
        return inserted

    # -- eviction / reclaim --------------------------------------------------

    def _iter_nodes(self) -> Iterator[_RadixNode]:
        stack = list(self._roots.values())
        while stack:
            node = stack.pop()
            stack.extend(node.children.values())
            if node.block_id != -1:  # roots are anchors, not entries
                yield node

    def _evictable_leaves(self) -> list[_RadixNode]:
        """Leaf entries nobody is reading (index holds the only reference)."""
        return [
            node
            for node in self._iter_nodes()
            if not node.children and self.pool.refcount(node.block_id) == 1
        ]

    def reclaimable_blocks(self) -> int:
        """Pages that could be freed by cascading idle-leaf eviction.

        A page counts only when its whole subtree is idle: evicting an
        interior page under a still-referenced child would strand the child
        unreachable, so eviction always proceeds leaf-first.  The walk is
        iterative — cached contexts can chain thousands of pages deep,
        far past Python's recursion limit.
        """
        # Post-order over every entry node: children are folded before
        # their parent, tracked as (all idle?, freeable count) per node.
        total = 0
        for root in self._roots.values():
            results: dict[int, tuple[bool, int]] = {}
            stack: list[tuple[_RadixNode, bool]] = [
                (child, False) for child in root.children.values()
            ]
            while stack:
                node, expanded = stack.pop()
                if not expanded:
                    stack.append((node, True))
                    stack.extend((child, False) for child in node.children.values())
                    continue
                all_free, count = True, 0
                for child in node.children.values():
                    child_free, child_count = results.pop(id(child))
                    count += child_count
                    all_free = all_free and child_free
                if all_free and self.pool.refcount(node.block_id) == 1:
                    results[id(node)] = (True, count + 1)
                else:
                    results[id(node)] = (False, count)
            total += sum(count for _, count in results.values())
        return total

    def evict(self, n_blocks: int) -> int:
        """Drop up to ``n_blocks`` least-recently-used idle entries.

        Eviction cascades leaf-first: removing a leaf may expose its parent
        as the next candidate.  Entries under a live reader (pool refcount
        above one) are skipped — shared pages are never evicted.
        """
        freed = 0
        while freed < n_blocks:
            leaves = self._evictable_leaves()
            if not leaves:
                break
            victim = min(leaves, key=lambda node: node.stamp)
            self._drop(victim)
            freed += 1
        self.stats.n_evicted_blocks += freed
        return freed

    def reclaim(self, n_blocks: int) -> int:
        """Pool pressure hook: same as :meth:`evict`."""
        return self.evict(n_blocks)

    def _drop(self, node: _RadixNode) -> None:
        assert not node.children
        parent = node.parent
        parent.children.pop(node.key)
        self.pool.release(node.block_id)
        self._n_blocks -= 1
        if parent.parent is None and not parent.children:
            # Last entry under this fingerprint: prune the root anchor too,
            # or context-keyed fingerprints (KIVI/KVQuant) would leak one
            # dead anchor per distinct document ever evicted.
            self._roots.pop(parent.key, None)
        self._notify_evict([node.key])

    def clear(self) -> int:
        """Release every cached page (e.g. before draining the pool)."""
        dropped = 0
        dropped_keys: list[str] = []
        for node in list(self._iter_nodes()):
            self.pool.release(node.block_id)
            dropped_keys.append(node.key)
            dropped += 1
        self._roots.clear()
        self._n_blocks = 0
        self.stats.n_evicted_blocks += dropped
        self._notify_evict(dropped_keys)
        return dropped

    def assert_consistent(self) -> None:
        """Structural invariants, asserted by the stress tests."""
        count = 0
        for node in self._iter_nodes():
            count += 1
            assert self.pool.refcount(node.block_id) >= 1
        assert count == self._n_blocks

"""Baseline KV-cache quantization methods (Table II of the paper).

* :class:`FP16Quantizer` — the unquantized reference.
* :class:`AtomQuantizer` — uniform low-bit group quantization of K and V
  (per-token groups), representing "trivial uniform quantization".
* :class:`KIVIQuantizer` — per-channel K quantization plus per-token V
  quantization.
* :class:`KVQuantQuantizer` — token-level mixed precision: a small fraction
  of outlier tokens stays FP16 and the rest is quantized with a non-uniform
  (nuq-style) codebook; its token-level search carries a latency cost.

All methods implement the common :class:`KVCacheQuantizer` interface so the
evaluation harness and the hardware model treat them uniformly; the Cocktail
method itself implements the same interface in
:mod:`repro.core.quantizer`.
"""

from repro.baselines.atom import AtomQuantizer
from repro.baselines.base import (
    KVCacheQuantizer,
    KVQuantizationPlan,
    QuantizationRequest,
)
from repro.baselines.fp16 import FP16Quantizer
from repro.baselines.kivi import KIVIQuantizer
from repro.baselines.kvquant import KVQuantQuantizer
from repro.baselines.registry import BASELINE_NAMES, get_baseline

__all__ = [
    "KVCacheQuantizer",
    "KVQuantizationPlan",
    "QuantizationRequest",
    "FP16Quantizer",
    "AtomQuantizer",
    "KIVIQuantizer",
    "KVQuantQuantizer",
    "BASELINE_NAMES",
    "get_baseline",
]

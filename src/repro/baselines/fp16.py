"""The unquantized FP16 reference method."""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import (
    KVCacheQuantizer,
    KVQuantizationPlan,
    QuantizationRequest,
    uniform_token_bits,
)
from repro.model.kv_cache import ModelKVCache
from repro.quant.dtypes import BitWidth


class FP16Quantizer(KVCacheQuantizer):
    """Keeps the whole KV cache at FP16 (the paper's accuracy upper bound)."""

    name = "fp16"
    display_name = "FP16"

    def plan(self, request: QuantizationRequest) -> KVQuantizationPlan:
        """All tokens stay at FP16; there is no search cost."""
        return KVQuantizationPlan(
            method=self.name,
            context_len=request.context_len,
            token_bits=uniform_token_bits(request.context_len, BitWidth.FP16),
            reordered=True,
            search_seconds=0.0,
        )

    def apply(self, cache: ModelKVCache, plan: KVQuantizationPlan) -> None:
        """No-op: the cache already holds full-precision values."""
        del cache, plan

    def reuse_fingerprint(
        self, plan: KVQuantizationPlan, context_token_ids: Sequence[int]
    ) -> str | None:
        """FP16 pages depend only on the token prefix, which the block
        hashes cover entirely; a constant fingerprint suffices."""
        del plan, context_token_ids
        return "fp16"

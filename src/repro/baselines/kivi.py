"""KIVI-style asymmetric KV-cache quantization.

KIVI's key observation is that K-cache outliers are concentrated in a few
*channels*, so the K cache is quantized per channel while the V cache keeps
the conventional per-token quantization.  Both use the same uniform bitwidth
(INT4 in the paper's comparison setup).
"""

from __future__ import annotations

from repro.baselines.base import (
    KVCacheQuantizer,
    KVQuantizationPlan,
    QuantizationRequest,
    uniform_token_bits,
)
from repro.model.kv_cache import ModelKVCache
from repro.quant.dtypes import BitWidth
from repro.quant.schemes import fake_quantize_per_channel, fake_quantize_per_token


class KIVIQuantizer(KVCacheQuantizer):
    """Per-channel K and per-token V uniform quantization."""

    name = "kivi"
    display_name = "KIVI"

    def __init__(self, bits: BitWidth | int = BitWidth.INT4):
        self.bits = BitWidth.from_bits(int(bits))

    def plan(self, request: QuantizationRequest) -> KVQuantizationPlan:
        """Uniform bitwidth for every context token; no search cost."""
        return KVQuantizationPlan(
            method=self.name,
            context_len=request.context_len,
            token_bits=uniform_token_bits(request.context_len, self.bits),
            reordered=True,
            search_seconds=0.0,
            details={"k_scheme": "per-channel", "v_scheme": "per-token"},
        )

    def apply(self, cache: ModelKVCache, plan: KVQuantizationPlan) -> None:
        """Quantize K per channel and V per token for every layer."""
        del plan
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            if k.shape[0] == 0:
                continue
            k_hat = fake_quantize_per_channel(k, self.bits)
            v_hat = fake_quantize_per_token(v, self.bits)
            cache.replace_context_kv(layer_index, k_hat, v_hat)

    def encode_context(self, cache, plan: KVQuantizationPlan):
        """Packed storage: per-channel K codes (shared scales) + per-token V."""
        from repro.kvpool.codecs import (
            PerChannelCodec,
            PerTokenCodec,
            TensorEncoding,
            encode_fitted,
        )

        encodings = []
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            n_tokens, h, d = k.shape
            if n_tokens == 0:
                empty = TensorEncoding(
                    n_tokens=0,
                    n_kv_heads=h,
                    head_dim=d,
                    token_bits=plan.token_bits,
                )
                encodings.append((empty, empty))
                continue
            k_enc = encode_fitted(k, plan.token_bits, PerChannelCodec, self.bits)
            v_codec = PerTokenCodec(self.bits, h, d)
            codes, meta = v_codec.encode(v)
            v_enc = TensorEncoding(
                n_tokens=n_tokens,
                n_kv_heads=h,
                head_dim=d,
                token_bits=plan.token_bits,
                codes=codes,
                meta=meta,
                codecs={int(self.bits): v_codec},
            )
            encodings.append((k_enc, v_enc))
        return encodings

"""KIVI-style asymmetric KV-cache quantization.

KIVI's key observation is that K-cache outliers are concentrated in a few
*channels*, so the K cache is quantized per channel while the V cache keeps
the conventional per-token quantization.  Both use the same uniform bitwidth
(INT4 in the paper's comparison setup).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import (
    KVCacheQuantizer,
    KVQuantizationPlan,
    QuantizationRequest,
    uniform_token_bits,
)
from repro.model.kv_cache import ModelKVCache
from repro.quant.dtypes import BitWidth
from repro.quant.schemes import fake_quantize_per_channel, fake_quantize_per_token


class KIVIQuantizer(KVCacheQuantizer):
    """Per-channel K and per-token V uniform quantization."""

    name = "kivi"
    display_name = "KIVI"
    #: The per-channel K scales are fitted over the whole context of each
    #: request, so the fused batched kernel cannot share dequant tables
    #: across a mixed batch — KIVI decodes on the sequential path.
    fitted_context_state = True

    def __init__(self, bits: BitWidth | int = BitWidth.INT4):
        self.bits = BitWidth.from_bits(int(bits))

    def plan(self, request: QuantizationRequest) -> KVQuantizationPlan:
        """Uniform bitwidth for every context token; no search cost."""
        return KVQuantizationPlan(
            method=self.name,
            context_len=request.context_len,
            token_bits=uniform_token_bits(request.context_len, self.bits),
            reordered=True,
            search_seconds=0.0,
            details={"k_scheme": "per-channel", "v_scheme": "per-token"},
        )

    def apply(self, cache: ModelKVCache, plan: KVQuantizationPlan) -> None:
        """Quantize K per channel and V per token for every layer."""
        del plan
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            if k.shape[0] == 0:
                continue
            k_hat = fake_quantize_per_channel(k, self.bits)
            v_hat = fake_quantize_per_token(v, self.bits)
            cache.replace_context_kv(layer_index, k_hat, v_hat)

    def encode_context(self, cache, plan: KVQuantizationPlan, *, start: int = 0):
        """Packed storage: per-channel K codes (shared scales) + per-token V.

        The K scales are fitted across the whole context, so a prefix-reuse
        ``start`` cannot skip the fit — but the per-token V rows below
        ``start`` (adopted already packed) are skipped, and the re-fitted K
        scales are bit-identical to the cached pages' by determinism.
        """
        from repro.kvpool.codecs import (
            PerChannelCodec,
            PerTokenCodec,
            TensorEncoding,
            encode_fitted,
        )

        encodings = []
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            n_tokens, h, d = k.shape
            if n_tokens == 0:
                empty = TensorEncoding(
                    n_tokens=0,
                    n_kv_heads=h,
                    head_dim=d,
                    token_bits=plan.token_bits,
                )
                encodings.append((empty, empty))
                continue
            k_enc = encode_fitted(
                k, plan.token_bits, PerChannelCodec, self.bits, start=start
            )
            v_codec = PerTokenCodec(self.bits, h, d)
            codes = np.zeros((n_tokens, v_codec.code_width), dtype=np.uint8)
            meta = np.zeros((n_tokens, v_codec.meta_width), dtype=np.float32)
            if start < n_tokens:
                codes[start:], meta[start:] = v_codec.encode(v[start:])
            v_enc = TensorEncoding(
                n_tokens=n_tokens,
                n_kv_heads=h,
                head_dim=d,
                token_bits=plan.token_bits,
                codes=codes,
                meta=meta,
                codecs={int(self.bits): v_codec},
            )
            encodings.append((k_enc, v_enc))
        return encodings

    def reuse_fingerprint(
        self, plan: KVQuantizationPlan, context_token_ids: Sequence[int]
    ) -> str | None:
        """KIVI's per-channel K scales are fitted over *all* context tokens,
        so a page's bytes depend on the entire context — only exact
        full-context repeats may share pages.  The full token sequence is
        folded into the fingerprint to enforce that."""
        from repro.kvpool.prefix import content_hash

        del plan
        return f"kivi/b{int(self.bits)}/" + content_hash(list(context_token_ids))

"""Common interface of all KV-cache quantization methods.

A method is asked two things:

1. :meth:`KVCacheQuantizer.plan` — given the request (context length, chunk
   texts, query, and read access to the freshly prefilled cache), decide the
   per-token bitwidth assignment, whether same-precision regions end up
   physically contiguous, and how expensive the decision process itself is
   (the "quantization search" latency the paper discusses).
2. :meth:`KVCacheQuantizer.apply` — execute the quantization numerics on the
   cache.  The accuracy simulator uses the quantize-then-dequantize view
   ("fake quantization"), which is numerically identical to what a fused
   dequantizing kernel computes.

The plan alone is enough for the analytic hardware model (memory, TPOT,
throughput); the apply step is what drives the accuracy experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.model.kv_cache import ModelKVCache
from repro.quant.dtypes import BitWidth


@dataclass
class QuantizationRequest:
    """Everything a method may consult when planning quantization."""

    context_len: int
    chunk_size: int
    chunk_texts: list[str]
    chunk_spans: list[tuple[int, int]]
    tail_span: tuple[int, int] | None
    query_text: str
    cache: ModelKVCache | None = None

    @property
    def n_chunks(self) -> int:
        """Number of full chunks (the tail is not a chunk)."""
        return len(self.chunk_spans)


@dataclass
class KVQuantizationPlan:
    """Outcome of a method's quantization search.

    Attributes
    ----------
    method:
        Method name.
    context_len:
        Number of context tokens covered by the plan.
    token_bits:
        Per-token bitwidth (integer bits: 2, 4, 8 or 16).
    reordered:
        Whether same-precision tokens are contiguous in physical memory
        after this method's layout step (uniform methods are trivially
        contiguous; Cocktail reorders; KVQuant's token-level interleaving is
        not contiguous).
    permutation:
        Optional token permutation (new order -> original index) used to
        make precision groups contiguous.
    search_seconds:
        Modeled host/GPU-side latency of the quantization search itself,
        charged once per request by the throughput model.
    details:
        Free-form method-specific information (chunk bitwidths, thresholds,
        similarity scores, ...).
    """

    method: str
    context_len: int
    token_bits: np.ndarray
    reordered: bool
    permutation: np.ndarray | None = None
    search_seconds: float = 0.0
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.token_bits = np.asarray(self.token_bits, dtype=np.int64)
        if self.token_bits.shape != (self.context_len,):
            raise ValueError(
                f"token_bits must have shape ({self.context_len},), got {self.token_bits.shape}"
            )
        valid = {int(b) for b in BitWidth}
        present = set(np.unique(self.token_bits).tolist())
        if not present <= valid:
            raise ValueError(f"invalid bitwidths in plan: {sorted(present - valid)}")
        if self.permutation is not None:
            self.permutation = np.asarray(self.permutation, dtype=np.int64)
            if sorted(self.permutation.tolist()) != list(range(self.context_len)):
                raise ValueError("permutation must be a permutation of the context tokens")

    def bit_fractions(self) -> dict[BitWidth, float]:
        """Fraction of context tokens stored at each bitwidth."""
        if self.context_len == 0:
            return {}
        fractions: dict[BitWidth, float] = {}
        for bits in BitWidth:
            count = int(np.sum(self.token_bits == int(bits)))
            if count:
                fractions[bits] = count / self.context_len
        return fractions

    def mean_bits(self) -> float:
        """Average storage bits per context token (payload only)."""
        if self.context_len == 0:
            return 0.0
        return float(np.mean(self.token_bits))

    def n_precision_runs(self) -> int:
        """Number of maximal same-precision runs in physical token order."""
        if self.context_len == 0:
            return 0
        order = self.token_bits
        if self.permutation is not None and self.reordered:
            order = self.token_bits[self.permutation]
        return int(1 + np.sum(order[1:] != order[:-1]))


class KVCacheQuantizer(abc.ABC):
    """Interface shared by the baselines and Cocktail."""

    #: Machine name used by registries and reports.
    name: str = "quantizer"
    #: Name as printed in the paper's tables.
    display_name: str = "Quantizer"
    #: Whether decode-time dequantization depends on state fitted *per
    #: request* across the whole context (KIVI's per-channel K scales,
    #: KVQuant's nuq codebooks).  A fused batched decode kernel shares its
    #: dequantization tables across the batch, so methods carrying
    #: per-request fitted state are served on the sequential decode path
    #: instead (see :mod:`repro.serving.backends`).  Token-local schemes
    #: leave this ``False`` and batch freely.
    fitted_context_state: bool = False

    @abc.abstractmethod
    def plan(self, request: QuantizationRequest) -> KVQuantizationPlan:
        """Decide the per-token precision assignment for a request."""

    @abc.abstractmethod
    def apply(self, cache: ModelKVCache, plan: KVQuantizationPlan) -> None:
        """Quantize the context region of ``cache`` in place (fake-quant view).

        ``cache`` may be the dense reference :class:`ModelKVCache` *or* a
        pool-backed :class:`~repro.kvpool.cache.PagedKVCache` — the serving
        engine passes either; both expose the same layer/context surface.
        """

    def encode_context(self, cache, plan: KVQuantizationPlan, *, start: int = 0):
        """Packed-storage encodings of the context region, or ``None``.

        Returns one ``(K, V)`` pair of
        :class:`~repro.kvpool.codecs.TensorEncoding` per layer whose decoded
        floats equal :meth:`apply`'s fake-quant output bit for bit — this is
        what the paged KV cache stores as actually-packed codes + scales.
        The default returns ``None``, telling the paged backend to fall back
        to :meth:`apply` (the context pages then hold the fake-quantized
        floats at full precision, so correctness never depends on a method
        shipping an encoder).

        ``start`` is the prefix-reuse hook: the leading ``start`` rows were
        matched in the serving engine's prefix index and adopted already
        packed, so encoders skip the quantization work for them wherever
        the numerics are token-local (the encodings still span the full
        context; the skipped code rows are simply blank).
        """
        del cache, plan, start
        return None

    def reuse_fingerprint(
        self, plan: KVQuantizationPlan, context_token_ids: Sequence[int]
    ) -> str | None:
        """Key scoping which requests may share this method's packed pages.

        Two requests can reuse each other's context pages only when the
        stored bytes are guaranteed identical.  The chained block hashes
        (:func:`repro.kvpool.prefix.block_hashes`) already cover the token
        ids and per-token bitwidths of every page and its whole prefix; the
        fingerprint must cover **everything else** the bytes depend on —
        method numerics, group sizes, and (for codecs fitted across the
        whole context, like KIVI's per-channel scales) the full context
        itself.  ``None`` means the method's pages are never shared, which
        is the safe default for quantizers that do not declare their
        storage dependencies.
        """
        del plan, context_token_ids
        return None

    def plan_and_apply(
        self, request: QuantizationRequest, cache: ModelKVCache
    ) -> KVQuantizationPlan:
        """Convenience: plan against ``request`` and apply to ``cache``."""
        plan = self.plan(request)
        self.apply(cache, plan)
        return plan


def uniform_token_bits(context_len: int, bits: BitWidth | int) -> np.ndarray:
    """Per-token bit array with a single uniform bitwidth."""
    return np.full(context_len, int(bits), dtype=np.int64)


def expand_chunk_bits_to_tokens(
    chunk_spans: Sequence[tuple[int, int]],
    chunk_bits: Sequence[BitWidth | int],
    context_len: int,
    *,
    tail_bits: BitWidth | int = BitWidth.FP16,
) -> np.ndarray:
    """Expand per-chunk bitwidths to a per-token bit array.

    Tokens not covered by any chunk (the non-divisible tail) receive
    ``tail_bits`` (FP16 by default, as in the paper).
    """
    if len(chunk_spans) != len(chunk_bits):
        raise ValueError("chunk_spans and chunk_bits must have equal length")
    token_bits = np.full(context_len, int(tail_bits), dtype=np.int64)
    for (start, end), bits in zip(chunk_spans, chunk_bits):
        if not 0 <= start <= end <= context_len:
            raise ValueError(f"chunk span ({start}, {end}) outside context of {context_len}")
        token_bits[start:end] = int(bits)
    return token_bits

"""KVQuant-style token-level mixed-precision quantization.

KVQuant keeps a small fraction of *outlier tokens* at full precision and
quantizes the remaining tokens with a non-uniform ("nuq") datatype whose
levels are fitted to the value distribution.  The outlier ranking is a
token-level search over the whole cache, which the paper identifies as slow;
this cost is reflected in the plan's ``search_seconds``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import (
    KVCacheQuantizer,
    KVQuantizationPlan,
    QuantizationRequest,
)
from repro.model.kv_cache import ModelKVCache
from repro.quant.dtypes import BitWidth


class KVQuantQuantizer(KVCacheQuantizer):
    """Token-level mixed precision: FP16 outlier tokens + nuq low-bit rest."""

    name = "kvquant"
    display_name = "KVQuant"
    #: The nuq codebooks and channel normalisation are fitted per request
    #: over every non-outlier context token — per-request lookup tables the
    #: fused batched kernel cannot share, so KVQuant decodes sequentially.
    fitted_context_state = True

    def __init__(
        self,
        bits: BitWidth | int = BitWidth.INT4,
        *,
        outlier_fraction: float = 0.01,
        search_us_per_token_layer: float = 0.08,
    ):
        self.bits = BitWidth.from_bits(int(bits))
        if not 0.0 <= outlier_fraction < 1.0:
            raise ValueError(f"outlier_fraction must be in [0, 1), got {outlier_fraction}")
        self.outlier_fraction = outlier_fraction
        self.search_us_per_token_layer = search_us_per_token_layer

    # -- planning ---------------------------------------------------------

    def _token_importance(self, cache: ModelKVCache, context_len: int) -> np.ndarray:
        """Outlier score per context token: mean K magnitude across layers/heads."""
        scores = np.zeros(context_len, dtype=np.float64)
        for layer_index in range(cache.n_layers):
            k = cache.layer(layer_index).k[:context_len]
            scores += np.abs(k).mean(axis=(1, 2))
        return scores / max(cache.n_layers, 1)

    def plan(self, request: QuantizationRequest) -> KVQuantizationPlan:
        """Rank tokens by K magnitude and keep the top fraction at FP16."""
        context_len = request.context_len
        token_bits = np.full(context_len, int(self.bits), dtype=np.int64)
        n_outliers = int(round(self.outlier_fraction * context_len))
        if request.cache is not None and n_outliers > 0:
            importance = self._token_importance(request.cache, context_len)
            outlier_indices = np.argsort(importance)[::-1][:n_outliers]
            token_bits[outlier_indices] = int(BitWidth.FP16)
        n_layers = request.cache.n_layers if request.cache is not None else 32
        search_seconds = (
            self.search_us_per_token_layer * context_len * n_layers / 1e6
        )
        return KVQuantizationPlan(
            method=self.name,
            context_len=context_len,
            token_bits=token_bits,
            reordered=False,
            search_seconds=search_seconds,
            details={"outlier_fraction": self.outlier_fraction},
        )

    # -- numerics ----------------------------------------------------------

    def _nuq_normalized(self, x: np.ndarray) -> np.ndarray:
        """Distribution-aware non-uniform quantization of one KV tensor.

        Following KVQuant's recipe, the per-channel offset (the dense
        "outlier" structure that is consistent across tokens) is isolated
        first, the residual is scaled per channel, and the scaled residual is
        quantized against a fitted non-uniform codebook; all normalisation is
        inverted after dequantization.  The numerics live in
        :class:`~repro.kvpool.codecs.NuqChannelNormCodec` so this fake-quant
        view and the paged cache's packed storage cannot drift.
        """
        from repro.kvpool.codecs import NuqChannelNormCodec

        codec = NuqChannelNormCodec(x, self.bits)
        return codec.decode(codec.take_codes(), None)

    def apply(self, cache: ModelKVCache, plan: KVQuantizationPlan) -> None:
        """Quantize non-outlier context tokens with normalised nuq codebooks."""
        low_mask = plan.token_bits != int(BitWidth.FP16)
        if not low_mask.any():
            return
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            if k.shape[0] == 0:
                continue
            k[low_mask] = self._nuq_normalized(k[low_mask])
            v[low_mask] = self._nuq_normalized(v[low_mask])
            cache.replace_context_kv(layer_index, k, v)

    def encode_context(self, cache, plan: KVQuantizationPlan, *, start: int = 0):
        """Packed nuq codes per token; outlier tokens stay FP16 float rows.

        The per-channel normalisation and fitted codebook span the whole
        context, so ``start`` only blanks the already-adopted code rows —
        the fit itself always runs over every quantized token.
        """
        from repro.kvpool.codecs import NuqChannelNormCodec, encode_fitted

        encodings = []
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            encodings.append(
                (
                    encode_fitted(
                        k, plan.token_bits, NuqChannelNormCodec, self.bits, start=start
                    ),
                    encode_fitted(
                        v, plan.token_bits, NuqChannelNormCodec, self.bits, start=start
                    ),
                )
            )
        return encodings

    def reuse_fingerprint(
        self, plan: KVQuantizationPlan, context_token_ids: Sequence[int]
    ) -> str | None:
        """The nuq codebooks and channel normalisation are fitted over every
        non-outlier context token, so pages are only shareable between exact
        full-context repeats (same tokens, same outlier assignment — the
        latter already rides in the hashed ``token_bits``)."""
        del plan
        from repro.kvpool.prefix import content_hash

        return (
            f"kvquant/b{int(self.bits)}/o{self.outlier_fraction}/"
            + content_hash(list(context_token_ids))
        )

"""Atom-style uniform group quantization of the KV cache.

Atom quantizes activations and the KV cache to low bit-width with *group
quantization*: contiguous groups of channels share a scale/zero-point.
Following the paper's comparison setup, only the KV-cache functionality is
used and the bitwidth is INT4.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines.base import (
    KVCacheQuantizer,
    KVQuantizationPlan,
    QuantizationRequest,
    uniform_token_bits,
)
from repro.model.kv_cache import ModelKVCache
from repro.quant.dtypes import BitWidth
from repro.quant.group import group_quantize


class AtomQuantizer(KVCacheQuantizer):
    """Uniform INT4 group quantization of K and V (per-token groups)."""

    name = "atom"
    display_name = "Atom"

    def __init__(self, bits: BitWidth | int = BitWidth.INT4, group_size: int = 128):
        self.bits = BitWidth.from_bits(int(bits))
        if group_size <= 0:
            raise ValueError(f"group_size must be > 0, got {group_size}")
        self.group_size = group_size

    def plan(self, request: QuantizationRequest) -> KVQuantizationPlan:
        """Uniform bitwidth for every context token; no search cost."""
        return KVQuantizationPlan(
            method=self.name,
            context_len=request.context_len,
            token_bits=uniform_token_bits(request.context_len, self.bits),
            reordered=True,
            search_seconds=0.0,
            details={"group_size": self.group_size},
        )

    def apply(self, cache: ModelKVCache, plan: KVQuantizationPlan) -> None:
        """Group-quantize the context K and V of every layer."""
        del plan
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            if k.shape[0] == 0:
                continue
            group = min(self.group_size, k.shape[-1])
            k_hat = group_quantize(k, self.bits, group).dequantize()
            v_hat = group_quantize(v, self.bits, group).dequantize()
            cache.replace_context_kv(layer_index, k_hat, v_hat)

    def encode_context(self, cache, plan: KVQuantizationPlan, *, start: int = 0):
        """Packed group-quantized storage (token-local channel groups)."""
        from repro.kvpool.codecs import encode_per_token_groups

        encodings = []
        for layer_index in range(cache.n_layers):
            k, v = cache.context_kv(layer_index)
            group = min(self.group_size, k.shape[-1])
            encodings.append(
                encode_per_token_groups(k, v, plan.token_bits, group, start=start)
            )
        return encodings

    def reuse_fingerprint(
        self, plan: KVQuantizationPlan, context_token_ids: Sequence[int]
    ) -> str | None:
        """Group quantization is token-local, so pages are shareable between
        any requests agreeing on the token prefix; only the group size (the
        bitwidth already rides in the block hashes) scopes the key."""
        del plan, context_token_ids
        return f"atom-ptg/g{self.group_size}"

"""Baseline registry (Cocktail registers itself via :mod:`repro.core.quantizer`)."""

from __future__ import annotations

from repro.baselines.atom import AtomQuantizer
from repro.baselines.base import KVCacheQuantizer
from repro.baselines.fp16 import FP16Quantizer
from repro.baselines.kivi import KIVIQuantizer
from repro.baselines.kvquant import KVQuantQuantizer

#: Baseline method names in the paper's row order (Table II).
BASELINE_NAMES: tuple[str, ...] = ("fp16", "atom", "kivi", "kvquant")


def get_baseline(name: str, **kwargs) -> KVCacheQuantizer:
    """Instantiate a baseline quantizer by name."""
    key = name.lower()
    if key == "fp16":
        return FP16Quantizer()
    if key == "atom":
        return AtomQuantizer(**kwargs)
    if key == "kivi":
        return KIVIQuantizer(**kwargs)
    if key == "kvquant":
        return KVQuantQuantizer(**kwargs)
    raise KeyError(f"unknown baseline {name!r}; known: {list(BASELINE_NAMES)}")

"""Shared utilities: seeded RNG helpers, validation and lightweight logging."""

from repro.utils.rng import derive_rng, derive_seed, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "derive_rng",
    "derive_seed",
    "spawn_rngs",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape",
]

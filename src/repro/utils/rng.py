"""Deterministic random-number helpers.

Every stochastic component in the library (weight construction, synthetic
dataset generation, encoder projections) derives its generator from a base
seed plus a string *tag*.  Deriving by tag rather than by call order makes
results reproducible even when callers change the order in which components
are built.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

_SEED_MODULUS = 2**63 - 1


def derive_seed(base_seed: int, *tags: object) -> int:
    """Derive a stable 63-bit seed from ``base_seed`` and a sequence of tags.

    Parameters
    ----------
    base_seed:
        The experiment-level seed.
    tags:
        Arbitrary hashable labels (strings, ints) identifying the component.

    Returns
    -------
    int
        A deterministic seed in ``[0, 2**63 - 1)``.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("utf-8"))
    for tag in tags:
        digest.update(b"\x1f")
        digest.update(str(tag).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "little") % _SEED_MODULUS


def derive_rng(base_seed: int, *tags: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from ``derive_seed``."""
    return np.random.default_rng(derive_seed(base_seed, *tags))


def spawn_rngs(base_seed: int, tags: Iterable[object]) -> list[np.random.Generator]:
    """Return one independent generator per tag."""
    return [derive_rng(base_seed, tag) for tag in tags]

"""Small argument-validation helpers used across the library."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or non-negative)."""
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the given range."""
    if inclusive:
        ok = low <= value <= high
    else:
        ok = low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )


def check_shape(name: str, array: np.ndarray, expected: Sequence[int | None]) -> None:
    """Raise ``ValueError`` unless ``array`` matches ``expected``.

    ``None`` entries in ``expected`` act as wildcards for that dimension.
    """
    if array.ndim != len(expected):
        raise ValueError(
            f"{name} must have {len(expected)} dimensions, got shape {array.shape}"
        )
    for axis, want in enumerate(expected):
        if want is not None and array.shape[axis] != want:
            raise ValueError(
                f"{name} has shape {array.shape}, expected {tuple(expected)}"
            )

"""Minimal logging helpers.

The library never configures the root logger; applications remain in control.
"""

from __future__ import annotations

import logging

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger namespaced under the library logger.

    Parameters
    ----------
    name:
        Optional sub-name, e.g. ``"core.search"``.  ``None`` returns the
        library root logger.
    """
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")

"""Dense per-layer KV cache.

The cache grows as tokens are appended (prefill appends a block, each decode
step appends one row).  The context region (the first ``n_context`` rows) is
what the quantizers in :mod:`repro.baselines` and :mod:`repro.core` operate
on; generated tokens always stay at full precision, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LayerKVCache:
    """KV cache of a single transformer layer.

    K and V are float32 arrays of which the first :attr:`length` rows are
    valid.  Storage is allocated lazily with geometric growth up to
    :attr:`capacity`: a freshly created (or cloned) cache only holds its
    valid region, so the per-preemption recompute path and the evaluation
    harness's clones no longer pay for zero-initialising ``capacity`` rows
    they never touch.
    """

    n_kv_heads: int
    head_dim: int
    capacity: int
    length: int = 0
    k: np.ndarray = field(init=False, repr=False)
    v: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        self.k = np.zeros((0, self.n_kv_heads, self.head_dim), dtype=np.float32)
        self.v = np.zeros((0, self.n_kv_heads, self.head_dim), dtype=np.float32)

    def _grow_to(self, n_rows: int) -> None:
        """Ensure at least ``n_rows`` rows are allocated (amortised doubling)."""
        allocated = self.k.shape[0]
        if allocated >= n_rows:
            return
        new_rows = min(self.capacity, max(n_rows, 2 * allocated))
        k = np.zeros((new_rows, self.n_kv_heads, self.head_dim), dtype=np.float32)
        v = np.zeros_like(k)
        k[: self.length] = self.k[: self.length]
        v[: self.length] = self.v[: self.length]
        self.k = k
        self.v = v

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Append ``(n, n_kv_heads, head_dim)`` K/V rows to the cache."""
        k_new = np.asarray(k_new, dtype=np.float32)
        v_new = np.asarray(v_new, dtype=np.float32)
        if k_new.shape != v_new.shape:
            raise ValueError(f"K/V shape mismatch: {k_new.shape} vs {v_new.shape}")
        n = k_new.shape[0]
        if self.length + n > self.capacity:
            raise ValueError(
                f"cache overflow: length {self.length} + {n} exceeds capacity {self.capacity}"
            )
        self._grow_to(self.length + n)
        self.k[self.length : self.length + n] = k_new
        self.v[self.length : self.length + n] = v_new
        self.length += n

    def keys(self) -> np.ndarray:
        """Valid K rows, shape ``(length, n_kv_heads, head_dim)``."""
        return self.k[: self.length]

    def values(self) -> np.ndarray:
        """Valid V rows, shape ``(length, n_kv_heads, head_dim)``."""
        return self.v[: self.length]

    def overwrite_prefix(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Overwrite the first ``len(k_new)`` rows (used by fake quantization)."""
        n = k_new.shape[0]
        if n > self.length:
            raise ValueError(f"cannot overwrite {n} rows; cache holds {self.length}")
        self.k[:n] = np.asarray(k_new, dtype=np.float32)
        self.v[:n] = np.asarray(v_new, dtype=np.float32)

    def truncate(self, n_rows: int) -> None:
        """Shrink the valid region to ``n_rows`` (storage is kept)."""
        if n_rows < 0 or n_rows > self.length:
            raise ValueError(
                f"n_rows must be in [0, {self.length}], got {n_rows}"
            )
        self.length = n_rows

    def clone(self) -> "LayerKVCache":
        """Deep copy of this layer cache (allocates only the valid region)."""
        copy = LayerKVCache(self.n_kv_heads, self.head_dim, self.capacity)
        copy.k = self.k[: self.length].copy()
        copy.v = self.v[: self.length].copy()
        copy.length = self.length
        return copy


@dataclass
class ModelKVCache:
    """KV caches for all layers of a model."""

    n_layers: int
    n_kv_heads: int
    head_dim: int
    capacity: int
    layers: list[LayerKVCache] = field(init=False, repr=False)
    n_context: int = 0

    def __post_init__(self) -> None:
        self.layers = [
            LayerKVCache(self.n_kv_heads, self.head_dim, self.capacity)
            for _ in range(self.n_layers)
        ]

    @property
    def length(self) -> int:
        """Number of cached tokens (identical across layers)."""
        return self.layers[0].length if self.layers else 0

    def layer(self, index: int) -> LayerKVCache:
        """Return the cache of layer ``index``."""
        return self.layers[index]

    def has_capacity(self) -> bool:
        """Whether one more decode token can be absorbed."""
        return self.length < self.capacity

    def live_tokens(self) -> int:
        """KV rows currently held (same duck surface as the paged cache)."""
        return self.length

    def mark_context(self, n_context: int) -> None:
        """Record how many leading tokens belong to the (quantizable) context."""
        if n_context < 0 or n_context > self.length:
            raise ValueError(
                f"n_context must be in [0, {self.length}], got {n_context}"
            )
        self.n_context = n_context

    def context_kv(self, layer_index: int) -> tuple[np.ndarray, np.ndarray]:
        """Return copies of the context-region K and V of one layer."""
        layer = self.layers[layer_index]
        return layer.k[: self.n_context].copy(), layer.v[: self.n_context].copy()

    def replace_context_kv(
        self, layer_index: int, k_new: np.ndarray, v_new: np.ndarray
    ) -> None:
        """Replace the context-region K and V of one layer (fake quantization)."""
        if k_new.shape[0] != self.n_context or v_new.shape[0] != self.n_context:
            raise ValueError(
                f"expected {self.n_context} context rows, got {k_new.shape[0]}"
            )
        layer = self.layers[layer_index]
        layer.k[: self.n_context] = np.asarray(k_new, dtype=np.float32)
        layer.v[: self.n_context] = np.asarray(v_new, dtype=np.float32)

    def truncate(self, n_tokens: int) -> None:
        """Roll the decode tail back to ``n_tokens`` rows in every layer.

        Speculative-decoding rollback for the dense reference cache: rows
        for rejected draft tokens are dropped as if never computed.  Like
        the paged cache, the context region is off limits — only the
        decode tail can shrink.
        """
        if n_tokens < self.n_context:
            raise ValueError(
                f"cannot truncate into the context region "
                f"({n_tokens} < {self.n_context})"
            )
        for layer in self.layers:
            layer.truncate(n_tokens)

    def snapshot(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Return per-layer copies of all valid K/V rows."""
        return [(layer.keys().copy(), layer.values().copy()) for layer in self.layers]

    def clone(self) -> "ModelKVCache":
        """Deep copy of the whole cache (used to evaluate several quantizers
        against the same prefill without re-running it)."""
        copy = ModelKVCache(
            n_layers=self.n_layers,
            n_kv_heads=self.n_kv_heads,
            head_dim=self.head_dim,
            capacity=self.capacity,
        )
        copy.layers = [layer.clone() for layer in self.layers]
        copy.n_context = self.n_context
        return copy

"""Shared decode-step state machine.

Historically the dense decode loop (:meth:`Transformer.generate_from_cache`)
and the blockwise Algorithm-1 loop (the old
``CocktailPipeline._generate_blockwise``) each re-implemented the same
stop-token / token-budget / cache-full bookkeeping, so their ``stopped_by``
semantics could drift.  :class:`DecodeSession` centralises that state machine
behind a backend-supplied step function and exposes it two ways:

* :meth:`DecodeSession.run` — the classic blocking greedy loop,
* :meth:`DecodeSession.advance` — one decode step at a time, which is what
  the continuous-batching scheduler in :mod:`repro.serving` interleaves
  across many in-flight sequences.

The per-step order of operations is load-bearing and matches the historical
loops exactly: the budget check precedes the stop-token check (a request
that exhausts its budget reports ``"max_tokens"`` even if the next sampled
token would have been a stop token), a token is emitted before the capacity
check (``"cache_full"`` still keeps the token that no longer fits a
follow-up step), and the backend step for the final budgeted token is still
computed (its sampled successor is simply never used).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.model.sampling import greedy_sample

#: The three terminal states a decode session can report.
STOP_REASONS: tuple[str, ...] = ("stop_token", "max_tokens", "cache_full")


def check_max_new_tokens(max_new_tokens: int) -> int:
    """Validate a decode budget, returning it as ``int``.

    A budget of zero would silently produce an empty answer labelled
    ``stopped_by="max_tokens"`` even when the very first sampled token is a
    stop token, so every entry point rejects it up front.
    """
    max_new_tokens = int(max_new_tokens)
    if max_new_tokens < 1:
        raise ValueError(
            f"max_new_tokens must be >= 1, got {max_new_tokens} "
            "(a zero budget cannot distinguish stop conditions)"
        )
    return max_new_tokens


class DecodeSession:
    """Incremental greedy/sampled decode over a backend step function.

    Parameters
    ----------
    step_fn:
        Maps the just-emitted token id to the next-token logits, appending
        the token to whatever cache representation the backend maintains.
    first_logits:
        Logits of the last prompt position (the distribution of the first
        output token), produced by the prefill phase.
    max_new_tokens:
        Decode budget; must be >= 1.
    stop_ids:
        Token IDs that terminate generation (excluded from the output).
    sampler:
        Maps logits to the next token ID (greedy by default).
    has_capacity:
        Returns whether the backend can absorb one more decode step; when it
        reports ``False`` the session ends with ``stopped_by="cache_full"``.
    """

    def __init__(
        self,
        step_fn: Callable[[int], np.ndarray],
        first_logits: np.ndarray,
        *,
        max_new_tokens: int,
        stop_ids: Sequence[int] = (),
        sampler: Callable[[np.ndarray], int] = greedy_sample,
        has_capacity: Callable[[], bool] | None = None,
    ):
        self._step_fn = step_fn
        self._sampler = sampler
        self._stop_set = frozenset(int(s) for s in stop_ids)
        self._max_new_tokens = check_max_new_tokens(max_new_tokens)
        self._has_capacity = has_capacity if has_capacity is not None else (lambda: True)
        self._next_id = int(sampler(first_logits))
        self.generated: list[int] = []
        self.stopped_by: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the session has reached a terminal state."""
        return self.stopped_by is not None

    @property
    def n_generated(self) -> int:
        """Number of tokens emitted so far."""
        return len(self.generated)

    @property
    def max_new_tokens(self) -> int:
        """The session's decode budget."""
        return self._max_new_tokens

    @property
    def remaining_budget(self) -> int:
        """Decode-budget tokens left before the session must stop.

        The scheduler's preemption policy consults this: a sequence one
        token (or less) from finishing is never worth preempting — sparing
        it both avoids wasted recompute and breaks preempt-thrash loops.
        """
        return self._max_new_tokens - len(self.generated)

    def advance(self) -> int | None:
        """Execute one decode step.

        Returns the token ID emitted by this step, or ``None`` when the
        session finishes without emitting (budget exhausted or stop token).
        Note the ``"cache_full"`` terminal state both emits a token *and*
        finishes, so check :attr:`finished` rather than the return value.
        """
        if self.finished:
            return None
        if len(self.generated) >= self._max_new_tokens:
            self.stopped_by = "max_tokens"
            return None
        if self._next_id in self._stop_set:
            self.stopped_by = "stop_token"
            return None
        token = self._next_id
        self.generated.append(token)
        if not self._has_capacity():
            self.stopped_by = "cache_full"
            return token
        logits = self._step_fn(token)
        self._next_id = int(self._sampler(logits))
        return token

    def run(self) -> tuple[list[int], str]:
        """Drive the session to completion; returns ``(token_ids, stopped_by)``."""
        while not self.finished:
            self.advance()
        return list(self.generated), self.stopped_by

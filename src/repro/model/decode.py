"""Shared decode-step state machine.

Historically the dense decode loop (:meth:`Transformer.generate_from_cache`)
and the blockwise Algorithm-1 loop (the old
``CocktailPipeline._generate_blockwise``) each re-implemented the same
stop-token / token-budget / cache-full bookkeeping, so their ``stopped_by``
semantics could drift.  :class:`DecodeSession` centralises that state machine
behind a backend-supplied step function and exposes it two ways:

* :meth:`DecodeSession.run` — the classic blocking greedy loop,
* :meth:`DecodeSession.advance` — one decode step at a time, which is what
  the continuous-batching scheduler in :mod:`repro.serving` interleaves
  across many in-flight sequences,
* :meth:`DecodeSession.begin_step` / :meth:`DecodeSession.complete_step` —
  the same single step split in two phases, so a
  :class:`BatchedDecodeStep` can run every session's bookkeeping first and
  then compute all pending forwards through **one fused call** per engine
  step instead of one model invocation per sequence,
* :meth:`DecodeSession.complete_verify` — the speculative variant of phase
  2: the fused call was a multi-token *verify* forward over
  ``[token, *drafts]``, and the session greedily accepts the drafted
  prefix the target model agrees with (exact under greedy sampling, so
  speculation never changes outputs — only the forward count).

The per-step order of operations is load-bearing and matches the historical
loops exactly: the budget check precedes the stop-token check (a request
that exhausts its budget reports ``"max_tokens"`` even if the next sampled
token would have been a stop token), a token is emitted before the capacity
check (``"cache_full"`` still keeps the token that no longer fits a
follow-up step), and the backend step for the final budgeted token is still
computed (its sampled successor is simply never used).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.model.sampling import greedy_sample

#: The three terminal states a decode session can report.
STOP_REASONS: tuple[str, ...] = ("stop_token", "max_tokens", "cache_full")


def check_max_new_tokens(max_new_tokens: int) -> int:
    """Validate a decode budget, returning it as ``int``.

    A budget of zero would silently produce an empty answer labelled
    ``stopped_by="max_tokens"`` even when the very first sampled token is a
    stop token, so every entry point rejects it up front.
    """
    max_new_tokens = int(max_new_tokens)
    if max_new_tokens < 1:
        raise ValueError(
            f"max_new_tokens must be >= 1, got {max_new_tokens} "
            "(a zero budget cannot distinguish stop conditions)"
        )
    return max_new_tokens


class DecodeSession:
    """Incremental greedy/sampled decode over a backend step function.

    Parameters
    ----------
    step_fn:
        Maps the just-emitted token id to the next-token logits, appending
        the token to whatever cache representation the backend maintains.
    first_logits:
        Logits of the last prompt position (the distribution of the first
        output token), produced by the prefill phase.
    max_new_tokens:
        Decode budget; must be >= 1.
    stop_ids:
        Token IDs that terminate generation (excluded from the output).
    sampler:
        Maps logits to the next token ID (greedy by default).
    has_capacity:
        Returns whether the backend can absorb one more decode step; when it
        reports ``False`` the session ends with ``stopped_by="cache_full"``.
    step_cost:
        Optional probe returning how many shared pool pages the *next*
        forward may allocate (0 or 1 for paged caches).  The batched
        coordinator reserves that many pages between a session's capacity
        check and its deferred forward, so a fused round observes exactly
        the pool availability the sequential round would.
    """

    def __init__(
        self,
        step_fn: Callable[[int], np.ndarray],
        first_logits: np.ndarray,
        *,
        max_new_tokens: int,
        stop_ids: Sequence[int] = (),
        sampler: Callable[[np.ndarray], int] = greedy_sample,
        has_capacity: Callable[[], bool] | None = None,
        step_cost: Callable[[], int] | None = None,
    ):
        self._step_fn = step_fn
        self._sampler = sampler
        self._stop_set = frozenset(int(s) for s in stop_ids)
        self._max_new_tokens = check_max_new_tokens(max_new_tokens)
        self._has_capacity = has_capacity if has_capacity is not None else (lambda: True)
        self.step_cost = step_cost
        self._next_id = int(sampler(first_logits))
        self.generated: list[int] = []
        self.stopped_by: str | None = None

    @property
    def finished(self) -> bool:
        """Whether the session has reached a terminal state."""
        return self.stopped_by is not None

    @property
    def n_generated(self) -> int:
        """Number of tokens emitted so far."""
        return len(self.generated)

    @property
    def max_new_tokens(self) -> int:
        """The session's decode budget."""
        return self._max_new_tokens

    @property
    def remaining_budget(self) -> int:
        """Decode-budget tokens left before the session must stop.

        The scheduler's preemption policy consults this: a sequence one
        token (or less) from finishing is never worth preempting — sparing
        it both avoids wasted recompute and breaks preempt-thrash loops.
        """
        return self._max_new_tokens - len(self.generated)

    @property
    def next_token(self) -> int:
        """The token the next :meth:`begin_step` will emit (if it emits).

        The speculative-decoding planner peeks this to seed the draft
        proposer: drafts continue the history *including* this token, since
        the verify forward feeds it first.
        """
        return self._next_id

    def begin_step(self) -> tuple[int | None, bool]:
        """Phase 1 of a (possibly fused) decode step: everything but the forward.

        Runs the budget / stop-token / capacity checks in the exact
        load-bearing order of :meth:`advance` and emits this step's token.
        Returns ``(token, needs_forward)``: ``needs_forward`` is ``True``
        when the backend forward for ``token`` still has to run — either
        inline (:meth:`advance`) or deferred into a fused batch
        (:class:`BatchedDecodeStep`), after which :meth:`complete_step`
        must be called with the resulting logits.  A terminal outcome
        (``token is None``, or a token with ``needs_forward=False`` for the
        ``"cache_full"`` case) requires no forward at all.
        """
        if self.finished:
            return None, False
        if len(self.generated) >= self._max_new_tokens:
            self.stopped_by = "max_tokens"
            return None, False
        if self._next_id in self._stop_set:
            self.stopped_by = "stop_token"
            return None, False
        token = self._next_id
        self.generated.append(token)
        if not self._has_capacity():
            self.stopped_by = "cache_full"
            return token, False
        return token, True

    def complete_step(self, logits: np.ndarray) -> None:
        """Phase 2: consume the forward's logits and sample the next token."""
        self._next_id = int(self._sampler(logits))

    def complete_verify(
        self, drafts: Sequence[int], logits_rows: Sequence[np.ndarray]
    ) -> list[int]:
        """Phase 2 of a *speculative* step: verify drafts against the target.

        The verify forward fed ``[token, d_1, .., d_k]`` (the token
        :meth:`begin_step` emitted plus ``k`` drafted guesses) and produced
        one logits row per input; ``logits_rows[i]`` is the target model's
        distribution for the position *after* input ``i``.  Verification
        replays the exact sequential state machine: sample the target's own
        next token from row ``i``, run the budget check, then the
        stop-token check (the load-bearing order of :meth:`begin_step`),
        and accept ``d_{i+1}`` only if it *is* that token.  The first
        mismatch (or terminal outcome) ends acceptance; the corrected
        target token becomes :attr:`next_token` for the following step, so
        even a zero-acceptance verify wastes drafts but never diverges.

        Returns the accepted tokens, in order, for the caller to emit; the
        caller is responsible for rolling the rejected tail's cache rows
        back (they were appended by the verify forward but the sequential
        path would never have computed them).
        """
        next_id = int(self._sampler(logits_rows[0]))
        accepted: list[int] = []
        for draft, logits in zip(drafts, logits_rows[1:]):
            if len(self.generated) >= self._max_new_tokens:
                self.stopped_by = "max_tokens"
                break
            if next_id in self._stop_set:
                self.stopped_by = "stop_token"
                break
            if int(draft) != next_id:
                break
            self.generated.append(next_id)
            accepted.append(next_id)
            next_id = int(self._sampler(logits))
        self._next_id = next_id
        return accepted

    def advance(self) -> int | None:
        """Execute one decode step.

        Returns the token ID emitted by this step, or ``None`` when the
        session finishes without emitting (budget exhausted or stop token).
        Note the ``"cache_full"`` terminal state both emits a token *and*
        finishes, so check :attr:`finished` rather than the return value.
        """
        token, needs_forward = self.begin_step()
        if needs_forward:
            self.complete_step(self._step_fn(token))
        return token

    def run(self) -> tuple[list[int], str]:
        """Drive the session to completion; returns ``(token_ids, stopped_by)``."""
        while not self.finished:
            self.advance()
        return list(self.generated), self.stopped_by


class BatchedDecodeStep:
    """Drives many :class:`DecodeSession`\\ s through one fused forward.

    One instance coordinates a single engine round: sessions are
    :meth:`add`-ed in scheduler order (phase 1 — checks, token emission and
    pool-page reservation run immediately, preserving each session's exact
    stop-token / budget / cache-full semantics and the sequential round's
    capacity-check ordering), then :meth:`commit` executes **one**
    ``step_batch_fn`` call covering every session that still needs a
    forward and feeds each session its own logits row.

    Parameters
    ----------
    step_batch_fn:
        ``(token_ids, payloads) -> list_of_logits`` — the fused backend
        forward.  ``payloads`` are the opaque per-session objects passed to
        :meth:`add` (the serving engine passes its prepared sequences, whose
        caches the fused model forward appends to).
    reserve:
        Optional callback taking a page count.  Called with
        ``session.step_cost()`` (or the explicit ``step_cost`` handed to
        :meth:`add`) whenever an added session will run a forward, so later
        sessions' capacity checks see the pool as the sequential round
        would have left it.  The caller releases the reservation before
        :meth:`commit` (the fused forward then performs the real
        allocations).
    verify_batch_fn:
        ``(token_lists, payloads) -> list_of_logits_blocks`` — the fused
        *speculative verify* forward, where ``token_lists[i]`` is
        ``[token, d_1, .., d_k]`` for sequence ``i`` and the returned block
        holds one logits row per input token.  Required only when any
        :meth:`add` carries drafts; a round without drafts always takes the
        plain ``step_batch_fn`` path.
    """

    def __init__(
        self,
        step_batch_fn: Callable[[list[int], list], list[np.ndarray]],
        *,
        reserve: Callable[[int], None] | None = None,
        verify_batch_fn: Callable[[list[list[int]], list], list] | None = None,
    ):
        self._step_batch_fn = step_batch_fn
        self._verify_batch_fn = verify_batch_fn
        self._reserve = reserve
        self._pending: list[tuple[DecodeSession, int, object, tuple[int, ...]]] = []
        #: Per-pending-entry accepted draft tokens of the last :meth:`commit`
        #: (empty lists on the plain path); aligned with the add order.
        self.accepted_drafts: list[list[int]] = []

    @property
    def n_pending(self) -> int:
        """Sessions whose forward is queued for the next :meth:`commit`."""
        return len(self._pending)

    def add(
        self,
        session: DecodeSession,
        payload: object = None,
        *,
        drafts: Sequence[int] = (),
        step_cost: int | None = None,
    ) -> tuple[int | None, bool]:
        """Run phase 1 for one session; queue its forward if it needs one.

        ``drafts`` turns the queued forward into a speculative verify over
        ``[token, *drafts]`` — :meth:`commit` then runs the session's
        propose→verify→accept phase and records the surviving tokens in
        :attr:`accepted_drafts` (the caller emits them and rolls back the
        rejected cache tail).  ``step_cost`` overrides the session's own
        single-token cost probe for the reservation callback — a verify
        appends up to ``1 + len(drafts)`` rows, so the caller passes the
        page cost of the whole run.

        Returns the session's ``(token, needs_forward)`` pair (see
        :meth:`DecodeSession.begin_step`).
        """
        if drafts and self._verify_batch_fn is None:
            raise ValueError("drafts require a verify_batch_fn")
        token, needs_forward = session.begin_step()
        if needs_forward:
            if step_cost is None and session.step_cost is not None:
                step_cost = session.step_cost()
            if self._reserve is not None and step_cost:
                self._reserve(step_cost)
            self._pending.append((session, token, payload, tuple(drafts)))
        return token, needs_forward

    def commit(self) -> int:
        """Execute the fused forward and complete every pending session.

        Returns the batch size of the fused call (0 when nothing was
        pending, in which case no forward runs at all).  With drafts
        queued, the single fused call is the verify forward; every
        session's acceptance outcome lands in :attr:`accepted_drafts`.
        """
        self.accepted_drafts = []
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        payloads = [payload for _, _, payload, _ in pending]
        if any(drafts for _, _, _, drafts in pending):
            token_lists = [[token, *drafts] for _, token, _, drafts in pending]
            logits_blocks = self._verify_batch_fn(token_lists, payloads)
            if len(logits_blocks) != len(pending):
                raise RuntimeError(
                    f"fused verify returned {len(logits_blocks)} logits blocks "
                    f"for {len(pending)} sequences"
                )
            for (session, _, _, drafts), rows in zip(pending, logits_blocks):
                if len(rows) != 1 + len(drafts):
                    raise RuntimeError(
                        f"verify returned {len(rows)} logits rows for "
                        f"{1 + len(drafts)} input tokens"
                    )
                self.accepted_drafts.append(session.complete_verify(drafts, rows))
        else:
            tokens = [token for _, token, _, _ in pending]
            logits_list = self._step_batch_fn(tokens, payloads)
            if len(logits_list) != len(pending):
                raise RuntimeError(
                    f"fused step returned {len(logits_list)} logits rows for "
                    f"{len(pending)} sequences"
                )
            for (session, _, _, _), logits in zip(pending, logits_list):
                session.complete_step(logits)
            self.accepted_drafts = [[] for _ in pending]
        return len(pending)

"""LLM inference substrate.

A pure-NumPy, single-sequence decoder-only transformer with:

* prefill + decode phases and a dense per-layer KV cache,
* multi-head attention with optional grouped-query attention (GQA),
* RoPE or table positional encodings,
* SwiGLU MLP blocks and optional RMSNorm,
* greedy / top-k sampling,
* **constructed retrieval weights** (:mod:`repro.model.weights`): a
  hand-built previous-token head + induction head that performs associative
  recall of facts planted in the context.  This makes downstream task
  accuracy a genuine function of KV-cache fidelity, which is the mechanism
  the paper's chunk-level quantization search exploits.
"""

from repro.model.config import (
    MODEL_SPECS,
    SIM_MODEL_NAMES,
    ModelConfig,
    ModelSpec,
    RetrievalLayout,
    get_model_spec,
    get_sim_config,
)
from repro.model.decode import STOP_REASONS, DecodeSession, check_max_new_tokens
from repro.model.kv_cache import LayerKVCache, ModelKVCache
from repro.model.tokenizer import SpecialTokens, Tokenizer
from repro.model.transformer import Transformer
from repro.model.weights import build_random_weights, build_retrieval_weights

__all__ = [
    "ModelConfig",
    "ModelSpec",
    "RetrievalLayout",
    "MODEL_SPECS",
    "SIM_MODEL_NAMES",
    "get_model_spec",
    "get_sim_config",
    "DecodeSession",
    "STOP_REASONS",
    "check_max_new_tokens",
    "LayerKVCache",
    "ModelKVCache",
    "Tokenizer",
    "SpecialTokens",
    "Transformer",
    "build_random_weights",
    "build_retrieval_weights",
]

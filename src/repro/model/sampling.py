"""Token sampling strategies for the decode loop."""

from __future__ import annotations

import numpy as np


def greedy_sample(logits: np.ndarray) -> int:
    """Return the argmax token id."""
    logits = np.asarray(logits, dtype=np.float32).reshape(-1)
    return int(np.argmax(logits))


def top_k_sample(
    logits: np.ndarray,
    k: int,
    rng: np.random.Generator,
    *,
    temperature: float = 1.0,
) -> int:
    """Sample from the top-``k`` tokens after temperature scaling."""
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    if temperature <= 0:
        raise ValueError(f"temperature must be > 0, got {temperature}")
    logits = np.asarray(logits, dtype=np.float64).reshape(-1)
    k = min(k, logits.size)
    top_indices = np.argpartition(-logits, k - 1)[:k]
    top_logits = logits[top_indices] / temperature
    top_logits -= top_logits.max()
    probs = np.exp(top_logits)
    probs /= probs.sum()
    return int(rng.choice(top_indices, p=probs))

"""Positional encodings.

Two mechanisms are provided:

* **Random positional codes** — per-position unit vectors used by the
  constructed retrieval model.  Random codes make the previous-token head's
  attention extremely peaked (inter-position dot products are O(1/sqrt(d)))
  which keeps the construction robust.  The positional table also carries the
  *next* position's code so the previous-token head can be expressed as a
  plain linear key projection.
* **Rotary positional embeddings (RoPE)** — the scheme used by the real
  Llama/Mistral models; exercised by the generic random-weight models and the
  unit tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng


def random_position_codes(n_positions: int, dim: int, seed: int) -> np.ndarray:
    """Return ``(n_positions, dim)`` unit-norm random positional codes."""
    if n_positions <= 0 or dim <= 0:
        raise ValueError("n_positions and dim must be positive")
    rng = derive_rng(seed, "positional-codes", n_positions, dim)
    codes = rng.standard_normal((n_positions, dim)).astype(np.float32)
    norms = np.linalg.norm(codes, axis=1, keepdims=True)
    return codes / np.maximum(norms, 1e-12)


def sinusoidal_position_codes(n_positions: int, dim: int, base: float = 10000.0) -> np.ndarray:
    """Classic sinusoidal positional codes (provided for completeness)."""
    if dim % 2 != 0:
        raise ValueError(f"dim must be even, got {dim}")
    positions = np.arange(n_positions, dtype=np.float64)[:, None]
    freqs = base ** (-np.arange(0, dim, 2, dtype=np.float64) / dim)
    angles = positions * freqs[None, :]
    codes = np.empty((n_positions, dim), dtype=np.float32)
    codes[:, 0::2] = np.sin(angles)
    codes[:, 1::2] = np.cos(angles)
    return codes


def rope_frequencies(head_dim: int, theta: float = 10000.0) -> np.ndarray:
    """Return the RoPE rotation frequencies for a head dimension."""
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    return theta ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)


def apply_rope(x: np.ndarray, positions: np.ndarray, theta: float = 10000.0) -> np.ndarray:
    """Apply rotary positional embeddings.

    Parameters
    ----------
    x:
        Array of shape ``(n_tokens, n_heads, head_dim)``.
    positions:
        Integer positions of shape ``(n_tokens,)``.
    theta:
        RoPE base.

    Returns
    -------
    numpy.ndarray
        Rotated array with the same shape as ``x``.
    """
    x = np.asarray(x, dtype=np.float32)
    if x.ndim != 3:
        raise ValueError(f"expected (n_tokens, n_heads, head_dim), got {x.shape}")
    n_tokens, _, head_dim = x.shape
    positions = np.asarray(positions, dtype=np.float64).reshape(n_tokens)
    freqs = rope_frequencies(head_dim, theta)
    angles = positions[:, None] * freqs[None, :]  # (n_tokens, head_dim/2)
    cos = np.cos(angles)[:, None, :].astype(np.float32)
    sin = np.sin(angles)[:, None, :].astype(np.float32)
    x_even = x[..., 0::2]
    x_odd = x[..., 1::2]
    rotated = np.empty_like(x)
    rotated[..., 0::2] = x_even * cos - x_odd * sin
    rotated[..., 1::2] = x_even * sin + x_odd * cos
    return rotated

"""Transformer block: pre-norm attention + pre-norm SwiGLU MLP with residuals."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.attention import AttentionLayer, AttentionWeights
from repro.model.config import ModelConfig
from repro.model.kv_cache import LayerKVCache
from repro.model.mlp import MLPLayer, MLPWeights, RMSNorm


@dataclass(frozen=True)
class BlockWeights:
    """All weights of one transformer block."""

    attention: AttentionWeights
    mlp: MLPWeights
    norm_attn: np.ndarray
    norm_mlp: np.ndarray


class TransformerBlock:
    """One pre-norm decoder block."""

    def __init__(self, weights: BlockWeights, config: ModelConfig):
        self.config = config
        self.attention = AttentionLayer(weights.attention, config)
        self.mlp = MLPLayer(weights.mlp)
        self.norm_attn = RMSNorm(weights.norm_attn, enabled=config.use_rmsnorm)
        self.norm_mlp = RMSNorm(weights.norm_mlp, enabled=config.use_rmsnorm)

    def forward_prefill(
        self, hidden: np.ndarray, cache: LayerKVCache, positions: np.ndarray
    ) -> np.ndarray:
        """Process a block of tokens (appends K/V to ``cache``)."""
        attn_out = self.attention.forward_prefill(
            self.norm_attn.forward(hidden), cache, positions
        )
        hidden = hidden + attn_out
        mlp_out = self.mlp.forward(self.norm_mlp.forward(hidden))
        return hidden + mlp_out

    def forward_decode(
        self, hidden: np.ndarray, cache: LayerKVCache, position: int
    ) -> np.ndarray:
        """Process a single token (appends its K/V to ``cache``)."""
        attn_out = self.attention.forward_decode(
            self.norm_attn.forward(hidden), cache, position
        )
        hidden = hidden + attn_out
        mlp_out = self.mlp.forward(self.norm_mlp.forward(hidden))
        return hidden + mlp_out

    def forward_decode_batch(
        self,
        hidden: np.ndarray,
        caches: Sequence[LayerKVCache],
        positions: Sequence[int],
        *,
        fast_math: bool = False,
    ) -> np.ndarray:
        """Process one token per sequence for ``n`` independent sequences.

        Norms, residual adds and activations are computed over the whole
        ``(n, d_model)`` stack (all row-local, so bit-identical to the
        per-sequence path); attention and the MLP GEMMs run per row — see
        :meth:`AttentionLayer.forward_decode_batch` for why batch-shaped
        GEMMs would break batch-composition invariance.

        ``fast_math=True`` (opt-in, reduced determinism) stacks the
        projection and MLP GEMMs over the whole batch instead.
        """
        attn_out = self.attention.forward_decode_batch(
            self.norm_attn.forward(hidden), caches, positions, fast_math=fast_math
        )
        hidden = hidden + attn_out
        normed = self.norm_mlp.forward(hidden)
        if fast_math and hidden.shape[0] > 1:
            return hidden + self.mlp.forward(normed)
        mlp_out = np.empty_like(hidden)
        for i in range(hidden.shape[0]):
            mlp_out[i] = self.mlp.forward(normed[i : i + 1])[0]
        return hidden + mlp_out

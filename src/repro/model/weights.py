"""Weight builders.

Two builders are provided:

* :func:`build_random_weights` — conventional random initialisation, used by
  unit tests that exercise the generic transformer machinery (GQA, RoPE,
  caching invariants).
* :func:`build_retrieval_weights` — the hand-constructed associative-recall
  model the evaluation harness uses.  Layer 0 hosts a *previous-token head*
  and layer 1 an *induction head*; together they copy, token by token, the
  phrase that follows the last prompt token's earlier occurrence in the
  context.

The construction is designed so that downstream accuracy responds to KV-cache
quantization the way real long-context LLMs do:

* **Keys are compact.**  The induction head's stored keys are unit-scale
  token-identity vectors, so even aggressive quantization of *irrelevant*
  chunks only adds bounded noise to their attention logits — attention still
  locks onto the relevant position (quantizing irrelevant context is cheap,
  the paper's core premise).
* **Values carry a large shared "register" component** (`register_scale`
  times a fixed direction) on top of a small token-identity component,
  mirroring the high-magnitude outlier structure of real value caches.  The
  quantization step size is set by the large component, so low-bit
  quantization of the *attended* value wipes out the small identity component
  (INT2) or mildly perturbs it (INT4) — which is precisely what turns
  low-precision storage of *relevant* chunks into wrong answer tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model.attention import AttentionWeights
from repro.model.config import ModelConfig, RetrievalLayout
from repro.model.layers import BlockWeights
from repro.model.mlp import MLPWeights
from repro.model.positional import random_position_codes
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class ModelWeights:
    """All parameters of a :class:`~repro.model.transformer.Transformer`."""

    embedding: np.ndarray  # (vocab_size, d_model)
    pos_table: np.ndarray | None  # (max_seq_len, d_model) or None
    unembedding: np.ndarray  # (d_model, vocab_size)
    blocks: list[BlockWeights]
    final_norm: np.ndarray  # (d_model,)


# ---------------------------------------------------------------------------
# Random initialisation
# ---------------------------------------------------------------------------


def _random_attention(config: ModelConfig, rng: np.random.Generator, scale: float) -> AttentionWeights:
    return AttentionWeights(
        wq=rng.normal(0.0, scale, (config.n_heads, config.d_model, config.head_dim)).astype(np.float32),
        wk=rng.normal(0.0, scale, (config.n_kv_heads, config.d_model, config.head_dim)).astype(np.float32),
        wv=rng.normal(0.0, scale, (config.n_kv_heads, config.d_model, config.head_dim)).astype(np.float32),
        wo=rng.normal(0.0, scale, (config.n_heads, config.head_dim, config.d_model)).astype(np.float32),
    )


def _random_mlp(config: ModelConfig, rng: np.random.Generator, scale: float) -> MLPWeights:
    return MLPWeights(
        w_gate=rng.normal(0.0, scale, (config.d_model, config.d_ff)).astype(np.float32),
        w_up=rng.normal(0.0, scale, (config.d_model, config.d_ff)).astype(np.float32),
        w_down=rng.normal(0.0, scale, (config.d_ff, config.d_model)).astype(np.float32),
    )


def build_random_weights(config: ModelConfig, seed: int = 0, *, scale: float = 0.02) -> ModelWeights:
    """Standard random initialisation (for generic-machinery tests)."""
    rng = derive_rng(seed, "random-weights", config.name)
    blocks = []
    for _ in range(config.n_layers):
        blocks.append(
            BlockWeights(
                attention=_random_attention(config, rng, scale),
                mlp=_random_mlp(config, rng, scale),
                norm_attn=np.ones(config.d_model, dtype=np.float32),
                norm_mlp=np.ones(config.d_model, dtype=np.float32),
            )
        )
    embedding = rng.normal(0.0, 1.0, (config.vocab_size, config.d_model)).astype(np.float32)
    unembedding = rng.normal(0.0, scale, (config.d_model, config.vocab_size)).astype(np.float32)
    pos_table = None
    if config.positional == "table":
        pos_table = rng.normal(0.0, 0.02, (config.max_seq_len, config.d_model)).astype(np.float32)
    return ModelWeights(
        embedding=embedding,
        pos_table=pos_table,
        unembedding=unembedding,
        blocks=blocks,
        final_norm=np.ones(config.d_model, dtype=np.float32),
    )


# ---------------------------------------------------------------------------
# Constructed retrieval model
# ---------------------------------------------------------------------------


def build_token_identities(
    vocab_size: int, d_tok: int, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(identities, register_direction)``.

    ``identities`` is a ``(vocab_size, d_tok)`` matrix of unit-norm
    token-identity vectors, all orthogonal to the fixed unit
    ``register_direction`` so that the shared register component never leaks
    into the token-discrimination logits.
    """
    rng = derive_rng(seed, "token-identities", vocab_size, d_tok)
    register = rng.standard_normal(d_tok)
    register /= np.linalg.norm(register)
    identities = rng.standard_normal((vocab_size, d_tok))
    identities -= np.outer(identities @ register, register)
    norms = np.linalg.norm(identities, axis=1, keepdims=True)
    identities /= np.maximum(norms, 1e-12)
    return identities.astype(np.float32), register.astype(np.float32)


def _noise_attention(
    config: ModelConfig, rng: np.random.Generator, noise_scale: float
) -> AttentionWeights:
    return _random_attention(config, rng, max(noise_scale, 1e-8))


def _zero_mlp(config: ModelConfig, rng: np.random.Generator, noise_scale: float) -> MLPWeights:
    """MLP whose down-projection is zero: the block is attention-only."""
    return MLPWeights(
        w_gate=rng.normal(0.0, max(noise_scale, 1e-8), (config.d_model, config.d_ff)).astype(np.float32),
        w_up=rng.normal(0.0, max(noise_scale, 1e-8), (config.d_model, config.d_ff)).astype(np.float32),
        w_down=np.zeros((config.d_ff, config.d_model), dtype=np.float32),
    )


def build_retrieval_weights(
    config: ModelConfig,
    seed: int | None = None,
    *,
    prev_gain: float = 100.0,
    induction_gain: float = 150.0,
    register_scale: float = 9.0,
    register_jitter: float = 0.35,
) -> ModelWeights:
    """Construct the associative-recall model described in the module docstring.

    Parameters
    ----------
    config:
        Must carry a :class:`~repro.model.config.RetrievalLayout`, use table
        positional encodings, have at least two layers, and disable RMSNorm.
    seed:
        Base seed; defaults to ``config.seed``.
    prev_gain:
        Query gain of the layer-0 previous-token head (sharpness of its
        attention).
    induction_gain:
        Query gain of the layer-1 induction head.
    register_scale:
        Magnitude of the shared register component carried by the value
        vectors relative to the unit token-identity component.  This is the
        knob that controls how destructive low-bit quantization of *attended*
        values is (larger = coarser quantization steps relative to the
        identity signal).
    register_jitter:
        Relative per-token variation of the register magnitude.  Tokens with
        a larger register component are more fragile under coarse
        quantization, which grades the INT4 accuracy loss instead of making
        it an all-or-nothing threshold, and gives distribution-aware codecs
        (KVQuant's non-uniform quantization) a genuine advantage over plain
        uniform INT4.
    """
    layout = config.retrieval_layout
    if layout is None:
        raise ValueError("config.retrieval_layout is required for retrieval weights")
    if config.positional != "table":
        raise ValueError("retrieval weights require table positional encodings")
    if config.use_rmsnorm:
        raise ValueError("retrieval weights require use_rmsnorm=False")
    if config.n_layers < 2:
        raise ValueError("retrieval weights require at least two layers")
    seed = config.seed if seed is None else seed
    rng = derive_rng(seed, "retrieval-weights", config.name)
    d_tok, d_pos = layout.d_tok, layout.d_pos
    noise = config.noise_scale

    identities, register = build_token_identities(config.vocab_size, d_tok, seed)

    # Embedding: token-identity subspace carries the shared register component
    # (with a per-token magnitude jitter) plus the per-token identity vector.
    embedding = np.zeros((config.vocab_size, config.d_model), dtype=np.float32)
    jitter_rng = derive_rng(seed, "register-jitter", config.name)
    register_coefficients = register_scale * (
        1.0 + register_jitter * jitter_rng.uniform(-1.0, 1.0, config.vocab_size)
    )
    embedding[:, layout.tok_slice] = (
        register_coefficients[:, None] * register[None, :] + identities
    )

    # Positional table: current position code plus next position code.
    pos_codes = random_position_codes(config.max_seq_len + 1, d_pos, seed)
    pos_table = np.zeros((config.max_seq_len, config.d_model), dtype=np.float32)
    pos_table[:, layout.pos_slice] = pos_codes[: config.max_seq_len]
    pos_table[:, layout.pos_next_slice] = pos_codes[1 : config.max_seq_len + 1]

    # Unembedding reads the output subspace against the token identities only
    # (the register direction is orthogonal to every identity by construction).
    unembedding = np.zeros((config.d_model, config.vocab_size), dtype=np.float32)
    unembedding[layout.out_slice, :] = identities.T

    eye_tok = np.eye(d_tok, dtype=np.float32)
    eye_pos = np.eye(d_pos, dtype=np.float32)
    # Projection that removes the register direction (used by the induction
    # head's query/key reads so attention matching happens in identity space).
    remove_register = eye_tok - np.outer(register, register)

    blocks: list[BlockWeights] = []
    for layer_index in range(config.n_layers):
        attn = _noise_attention(config, rng, noise)
        wq, wk, wv, wo = (
            attn.wq.copy(),
            attn.wk.copy(),
            attn.wv.copy(),
            attn.wo.copy(),
        )
        if layer_index == 0:
            # Previous-token head (head 0): Q reads the current position code,
            # K reads the *next*-position code, so position i attends to i-1.
            wq[0].fill(0.0)
            wk[0].fill(0.0)
            wv[0].fill(0.0)
            wo[0].fill(0.0)
            wq[0][layout.pos_slice, :d_pos] = eye_pos * prev_gain
            wk[0][layout.pos_next_slice, :d_pos] = eye_pos
            wv[0][layout.tok_slice, :d_tok] = eye_tok
            wo[0][:d_tok, layout.prev_slice] = eye_tok
        elif layer_index == 1:
            # Induction head (head 0): Q reads the current token identity
            # (register removed), K reads the previous-token identity written
            # by layer 0 (register removed), V reads the full token subspace
            # (register + identity), and the output is written to the output
            # subspace read by the unembedding.
            wq[0].fill(0.0)
            wk[0].fill(0.0)
            wv[0].fill(0.0)
            wo[0].fill(0.0)
            wq[0][layout.tok_slice, :d_tok] = remove_register * induction_gain
            wk[0][layout.prev_slice, :d_tok] = remove_register
            wv[0][layout.tok_slice, :d_tok] = eye_tok
            wo[0][:d_tok, layout.out_slice] = eye_tok
        blocks.append(
            BlockWeights(
                attention=AttentionWeights(wq=wq, wk=wk, wv=wv, wo=wo),
                mlp=_zero_mlp(config, rng, noise),
                norm_attn=np.ones(config.d_model, dtype=np.float32),
                norm_mlp=np.ones(config.d_model, dtype=np.float32),
            )
        )

    return ModelWeights(
        embedding=embedding,
        pos_table=pos_table,
        unembedding=unembedding,
        blocks=blocks,
        final_norm=np.ones(config.d_model, dtype=np.float32),
    )

"""SwiGLU feed-forward block and RMSNorm."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation."""
    x = np.asarray(x, dtype=np.float32)
    return x / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class MLPWeights:
    """SwiGLU weights: ``w_gate``/``w_up`` ``(d_model, d_ff)``, ``w_down`` ``(d_ff, d_model)``."""

    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray


class MLPLayer:
    """SwiGLU feed-forward layer: ``(silu(x W_g) * (x W_u)) W_d``."""

    def __init__(self, weights: MLPWeights):
        self.weights = weights

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Apply the feed-forward transform to ``(n, d_model)`` hidden states."""
        gate = silu(hidden @ self.weights.w_gate)
        up = hidden @ self.weights.w_up
        return ((gate * up) @ self.weights.w_down).astype(np.float32)


class RMSNorm:
    """Root-mean-square layer normalisation with a learned gain.

    When ``enabled`` is ``False`` the layer is the identity; the constructed
    retrieval models disable normalisation so the hand-built subspace
    amplitudes are preserved exactly.
    """

    def __init__(self, weight: np.ndarray, *, enabled: bool = True, eps: float = 1e-6):
        self.weight = np.asarray(weight, dtype=np.float32)
        self.enabled = enabled
        self.eps = eps

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Normalise ``(n, d_model)`` hidden states."""
        if not self.enabled:
            return np.asarray(hidden, dtype=np.float32)
        hidden = np.asarray(hidden, dtype=np.float32)
        rms = np.sqrt(np.mean(hidden**2, axis=-1, keepdims=True) + self.eps)
        return hidden / rms * self.weight

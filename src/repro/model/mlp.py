"""SwiGLU feed-forward block and RMSNorm."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling import span as profiling_span


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU (swish) activation."""
    x = np.asarray(x, dtype=np.float32)
    return x / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class MLPWeights:
    """SwiGLU weights: ``w_gate``/``w_up`` ``(d_model, d_ff)``, ``w_down`` ``(d_ff, d_model)``."""

    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray


class MLPLayer:
    """SwiGLU feed-forward layer: ``(silu(x W_g) * (x W_u)) W_d``."""

    def __init__(self, weights: MLPWeights):
        self.weights = weights
        # One [W_gate | W_up] GEMM per forward instead of two: sgemm output
        # columns are independent dot products, so the two halves are
        # bit-identical to the separate GEMMs (merged-projection parity
        # test covers this layer too).
        self._w_gate_up = np.ascontiguousarray(
            np.concatenate([weights.w_gate, weights.w_up], axis=1)
        )
        self._d_ff = weights.w_gate.shape[1]

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Apply the feed-forward transform to ``(n, d_model)`` hidden states."""
        with profiling_span("mlp"):
            fused = hidden @ self._w_gate_up
            gate = fused[:, : self._d_ff]
            up = fused[:, self._d_ff :]
            # silu(gate) * up with in-place temporaries: the same exp/add/
            # divide/multiply scalar ops as `silu`, minus the allocations.
            act = np.exp(-gate)
            act += 1.0
            np.divide(gate, act, out=act)
            act *= up
            out = act @ self.weights.w_down
            return out if out.dtype == np.float32 else out.astype(np.float32)


class RMSNorm:
    """Root-mean-square layer normalisation with a learned gain.

    When ``enabled`` is ``False`` the layer is the identity; the constructed
    retrieval models disable normalisation so the hand-built subspace
    amplitudes are preserved exactly.
    """

    def __init__(self, weight: np.ndarray, *, enabled: bool = True, eps: float = 1e-6):
        self.weight = np.asarray(weight, dtype=np.float32)
        self.enabled = enabled
        self.eps = eps

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        """Normalise ``(n, d_model)`` hidden states."""
        if not self.enabled:
            return np.asarray(hidden, dtype=np.float32)
        hidden = np.asarray(hidden, dtype=np.float32)
        rms = np.sqrt(np.mean(hidden**2, axis=-1, keepdims=True) + self.eps)
        # Same divide-then-multiply op sequence as `hidden / rms * weight`,
        # reusing the quotient buffer for the gain.
        out = hidden / rms
        out *= self.weight
        return out

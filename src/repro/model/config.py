"""Model configurations.

Two kinds of configuration live here:

* :class:`ModelConfig` — the architecture of the *simulation* model actually
  executed by the NumPy substrate (small widths, constructed retrieval
  weights).  One preset per paper model, differing in depth, noise level and
  context window so that model-to-model score variation appears in Table II.
* :class:`ModelSpec` — the *paper-scale* architecture (Llama2-7B/13B,
  Mistral-7B, Longchat-7B) used only by the analytic hardware model for
  memory / latency / throughput accounting (Figures 4-6, Table V).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quant.dtypes import BitWidth
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RetrievalLayout:
    """Residual-stream subspace layout used by the constructed weights.

    The residual stream is partitioned into non-overlapping subspaces:

    ``tok``      token-identity embedding of the current token,
    ``prev``     token-identity embedding of the *previous* token (written by
                 the layer-0 previous-token head),
    ``out``      retrieved-token embedding (written by the layer-1 induction
                 head and read by the unembedding),
    ``pos``      positional code of the current position,
    ``pos_next`` positional code of the *next* position (read by the
                 previous-token head's key projection).
    """

    d_tok: int = 32
    d_pos: int = 32

    @property
    def d_model(self) -> int:
        """Total residual width implied by the layout."""
        return 3 * self.d_tok + 2 * self.d_pos

    @property
    def tok_slice(self) -> slice:
        return slice(0, self.d_tok)

    @property
    def prev_slice(self) -> slice:
        return slice(self.d_tok, 2 * self.d_tok)

    @property
    def out_slice(self) -> slice:
        return slice(2 * self.d_tok, 3 * self.d_tok)

    @property
    def pos_slice(self) -> slice:
        return slice(3 * self.d_tok, 3 * self.d_tok + self.d_pos)

    @property
    def pos_next_slice(self) -> slice:
        return slice(3 * self.d_tok + self.d_pos, 3 * self.d_tok + 2 * self.d_pos)


@dataclass(frozen=True)
class ModelConfig:
    """Architecture of the executed NumPy simulation model."""

    name: str
    vocab_size: int
    d_model: int
    n_layers: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    max_seq_len: int
    positional: str = "table"  # "table", "rope" or "none"
    rope_theta: float = 10000.0
    use_rmsnorm: bool = False
    attention_temperature: float = 1.0
    noise_scale: float = 0.0
    retrieval_layout: RetrievalLayout | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("vocab_size", self.vocab_size)
        check_positive("d_model", self.d_model)
        check_positive("n_layers", self.n_layers)
        check_positive("n_heads", self.n_heads)
        check_positive("n_kv_heads", self.n_kv_heads)
        check_positive("d_ff", self.d_ff)
        check_positive("max_seq_len", self.max_seq_len)
        if self.d_model % self.n_heads != 0:
            raise ValueError(
                f"d_model={self.d_model} must be divisible by n_heads={self.n_heads}"
            )
        if self.n_heads % self.n_kv_heads != 0:
            raise ValueError(
                f"n_heads={self.n_heads} must be divisible by n_kv_heads={self.n_kv_heads}"
            )
        if self.positional not in ("table", "rope", "none"):
            raise ValueError(f"unknown positional mode {self.positional!r}")
        if self.retrieval_layout is not None:
            layout = self.retrieval_layout
            if layout.d_model != self.d_model:
                raise ValueError(
                    f"retrieval layout needs d_model={layout.d_model}, got {self.d_model}"
                )
            if self.head_dim < max(layout.d_tok, layout.d_pos):
                raise ValueError(
                    "head_dim must be at least as large as the retrieval subspaces"
                )

    @property
    def head_dim(self) -> int:
        """Per-head dimension."""
        return self.d_model // self.n_heads

    @property
    def gqa_group(self) -> int:
        """Number of query heads sharing one KV head."""
        return self.n_heads // self.n_kv_heads


@dataclass(frozen=True)
class ModelSpec:
    """Paper-scale architecture used by the analytic hardware model."""

    name: str
    display_name: str
    n_layers: int
    d_model: int
    n_heads: int
    n_kv_heads: int
    d_ff: int
    vocab_size: int
    max_context: int
    weight_bits: int = 16

    @property
    def head_dim(self) -> int:
        return self.d_model // self.n_heads

    @property
    def n_parameters(self) -> int:
        """Approximate parameter count (embeddings + blocks + LM head)."""
        embed = self.vocab_size * self.d_model * 2  # tied or untied; count both
        per_layer_attn = self.d_model * (
            self.n_heads * self.head_dim  # W_Q
            + 2 * self.n_kv_heads * self.head_dim  # W_K, W_V
            + self.n_heads * self.head_dim  # W_O (transposed)
        )
        per_layer_mlp = 3 * self.d_model * self.d_ff  # SwiGLU gate/up/down
        per_layer_norm = 2 * self.d_model
        return embed + self.n_layers * (per_layer_attn + per_layer_mlp + per_layer_norm)

    def weight_bytes(self) -> int:
        """Bytes needed to hold the model weights at ``weight_bits``."""
        return self.n_parameters * self.weight_bits // 8

    def kv_elements_per_token(self) -> int:
        """Number of K plus V elements cached per token across all layers."""
        return 2 * self.n_layers * self.n_kv_heads * self.head_dim

    def kv_bytes_per_token(self, bits: BitWidth | int = BitWidth.FP16) -> int:
        """Payload bytes of cached KV per token at a uniform bitwidth."""
        return self.kv_elements_per_token() * int(bits) // 8


#: Paper-scale specs for the four evaluated models (Table II, Figures 4-6).
MODEL_SPECS: dict[str, ModelSpec] = {
    "llama2-7b": ModelSpec(
        name="llama2-7b",
        display_name="Llama2-7B",
        n_layers=32,
        d_model=4096,
        n_heads=32,
        n_kv_heads=32,
        d_ff=11008,
        vocab_size=32000,
        max_context=4096,
    ),
    "llama2-13b": ModelSpec(
        name="llama2-13b",
        display_name="Llama2-13B",
        n_layers=40,
        d_model=5120,
        n_heads=40,
        n_kv_heads=40,
        d_ff=13824,
        vocab_size=32000,
        max_context=4096,
    ),
    "mistral-7b": ModelSpec(
        name="mistral-7b",
        display_name="Mistral-7B",
        n_layers=32,
        d_model=4096,
        n_heads=32,
        n_kv_heads=8,
        d_ff=14336,
        vocab_size=32000,
        max_context=32768,
    ),
    "longchat-7b": ModelSpec(
        name="longchat-7b",
        display_name="Longchat-7B",
        n_layers=32,
        d_model=4096,
        n_heads=32,
        n_kv_heads=32,
        d_ff=11008,
        vocab_size=32000,
        max_context=32768,
    ),
}

#: Names of the four simulated models, in the paper's presentation order.
SIM_MODEL_NAMES: tuple[str, ...] = tuple(MODEL_SPECS)

_DEFAULT_LAYOUT = RetrievalLayout(d_tok=64, d_pos=32)

#: Per-model simulation knobs: (extra noise layers, noise scale, seed offset).
_SIM_VARIANTS: dict[str, tuple[int, float, int]] = {
    "llama2-7b": (2, 0.015, 0),
    "llama2-13b": (3, 0.010, 1),
    "mistral-7b": (2, 0.020, 2),
    "longchat-7b": (2, 0.025, 3),
}


def get_model_spec(name: str) -> ModelSpec:
    """Return the paper-scale :class:`ModelSpec` for ``name``."""
    try:
        return MODEL_SPECS[name]
    except KeyError as exc:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_SPECS)}") from exc


def get_sim_config(
    name: str,
    vocab_size: int,
    *,
    max_seq_len: int = 4096,
    seed: int = 0,
) -> ModelConfig:
    """Return the simulation :class:`ModelConfig` for a paper model.

    Parameters
    ----------
    name:
        One of :data:`SIM_MODEL_NAMES`.
    vocab_size:
        Vocabulary size of the tokenizer the model will be paired with.
    max_seq_len:
        Maximum sequence length (context + generated tokens).
    seed:
        Base seed; combined with a per-model offset so the four models have
        distinct (but deterministic) noise heads and embeddings.
    """
    if name not in _SIM_VARIANTS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(_SIM_VARIANTS)}")
    extra_layers, noise_scale, seed_offset = _SIM_VARIANTS[name]
    layout = _DEFAULT_LAYOUT
    return ModelConfig(
        name=name,
        vocab_size=vocab_size,
        d_model=layout.d_model,
        n_layers=2 + extra_layers,
        n_heads=4,
        n_kv_heads=4,
        d_ff=2 * layout.d_model,
        max_seq_len=max_seq_len,
        positional="table",
        use_rmsnorm=False,
        attention_temperature=1.0,
        noise_scale=noise_scale,
        retrieval_layout=layout,
        seed=seed + seed_offset,
    )

"""Single-sequence decoder-only transformer with prefill/decode phases."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.kvpool.cache import PagedKVCache
from repro.model.config import ModelConfig
from repro.model.decode import DecodeSession, check_max_new_tokens
from repro.model.kv_cache import ModelKVCache
from repro.model.layers import TransformerBlock
from repro.model.mlp import RMSNorm
from repro.model.sampling import greedy_sample
from repro.model.weights import ModelWeights
from repro.profiling import span as profiling_span


@dataclass
class GenerationResult:
    """Outcome of :meth:`Transformer.generate`.

    Attributes
    ----------
    token_ids:
        Generated token IDs, excluding the prompt and excluding the stop
        token that terminated generation (if any).
    n_prompt_tokens:
        Length of the prompt that was prefetched.
    stopped_by:
        ``"stop_token"``, ``"max_tokens"`` or ``"cache_full"``.
    cache:
        The KV cache after generation (context + prompt + generated rows).
    """

    token_ids: list[int]
    n_prompt_tokens: int
    stopped_by: str
    cache: ModelKVCache = field(repr=False, default=None)


class Transformer:
    """A decoder-only transformer over a single token sequence.

    The model is deliberately batch-free: the paper's accuracy experiments
    evaluate one request at a time, and batching only matters for the
    analytic throughput model in :mod:`repro.hardware`.
    """

    def __init__(self, config: ModelConfig, weights: ModelWeights):
        if weights.embedding.shape != (config.vocab_size, config.d_model):
            raise ValueError(
                f"embedding shape {weights.embedding.shape} does not match config"
            )
        self.config = config
        self.weights = weights
        self.blocks = [TransformerBlock(bw, config) for bw in weights.blocks]
        self.final_norm = RMSNorm(weights.final_norm, enabled=config.use_rmsnorm)

    # -- infrastructure ----------------------------------------------------

    def new_cache(self, capacity: int | None = None, *, pool=None) -> ModelKVCache:
        """Allocate an empty KV cache sized for ``capacity`` tokens.

        With ``pool`` (a :class:`repro.kvpool.BlockPool`) the cache is a
        :class:`~repro.kvpool.cache.PagedKVCache` drawing pages from the
        shared pool; the transformer drives either representation through
        the same layer-cache surface.
        """
        capacity = capacity or self.config.max_seq_len
        if pool is not None:
            if (
                pool.n_layers != self.config.n_layers
                or pool.n_kv_heads != self.config.n_kv_heads
                or pool.head_dim != self.config.head_dim
            ):
                raise ValueError("block pool geometry does not match the model config")
            return PagedKVCache(pool, capacity)
        return ModelKVCache(
            n_layers=self.config.n_layers,
            n_kv_heads=self.config.n_kv_heads,
            head_dim=self.config.head_dim,
            capacity=capacity,
        )

    def embed(self, token_ids: Sequence[int], positions: np.ndarray) -> np.ndarray:
        """Token + positional embedding, shape ``(n, d_model)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.size and (token_ids.min() < 0 or token_ids.max() >= self.config.vocab_size):
            raise ValueError("token id out of range")
        hidden = self.weights.embedding[token_ids].astype(np.float32)
        if self.config.positional == "table" and self.weights.pos_table is not None:
            positions = np.asarray(positions, dtype=np.int64)
            if positions.size and positions.max() >= self.weights.pos_table.shape[0]:
                raise ValueError("position exceeds the positional table")
            hidden = hidden + self.weights.pos_table[positions]
        return hidden

    def _logits(self, hidden_row: np.ndarray) -> np.ndarray:
        with profiling_span("logits"):
            normed = self.final_norm.forward(hidden_row.reshape(1, -1))[0]
            logits = normed @ self.weights.unembedding
            return logits if logits.dtype == np.float32 else logits.astype(np.float32)

    # -- phases --------------------------------------------------------------

    def prefill(self, token_ids: Sequence[int], cache: ModelKVCache) -> np.ndarray:
        """Run the prefill phase over ``token_ids``, filling ``cache``.

        Returns the logits of the *last* prompt position (the distribution of
        the first output token).
        """
        token_ids = list(token_ids)
        if not token_ids:
            raise ValueError("prefill requires at least one token")
        start = cache.length
        if start + len(token_ids) > cache.capacity:
            raise ValueError("prompt does not fit in the KV cache")
        positions = np.arange(start, start + len(token_ids))
        hidden = self.embed(token_ids, positions)
        for block, layer_cache in zip(self.blocks, cache.layers):
            hidden = block.forward_prefill(hidden, layer_cache, positions)
        return self._logits(hidden[-1])

    def decode_step(self, token_id: int, cache: ModelKVCache) -> np.ndarray:
        """Run one decode step for ``token_id``, appending to ``cache``.

        Returns the logits predicting the next token.
        """
        position = cache.length
        if position >= cache.capacity:
            raise ValueError("KV cache is full")
        hidden = self.embed([token_id], np.asarray([position]))
        for block, layer_cache in zip(self.blocks, cache.layers):
            hidden = block.forward_decode(hidden, layer_cache, position)
        return self._logits(hidden[0])

    def decode_step_batch(
        self,
        token_ids: Sequence[int],
        caches: Sequence[ModelKVCache],
        *,
        fast_math: bool = False,
    ) -> list[np.ndarray]:
        """One fused decode forward advancing ``n`` independent sequences.

        ``token_ids[i]`` is appended to ``caches[i]`` at that sequence's own
        next position and the corresponding next-token logits are returned,
        one row per sequence.  This is the serving engine's batched hot
        path: the whole running set moves one token through the model in a
        *single* invocation (one embedding lookup, one pass over the layer
        stack) instead of ``n`` per-sequence forwards.  Outputs are
        bit-identical to ``n`` separate :meth:`decode_step` calls for any
        batch composition — see
        :meth:`~repro.model.attention.AttentionLayer.forward_decode_batch`
        for the invariance argument.

        ``fast_math=True`` (the engine's opt-in throughput mode) stacks the
        per-row projection, MLP and unembedding GEMMs into whole-batch
        GEMMs; outputs may then drift within float tolerance and depend on
        batch composition.  Default ``False`` keeps the bit-identity
        contract.
        """
        if len(token_ids) != len(caches):
            raise ValueError(
                f"{len(token_ids)} tokens for {len(caches)} caches"
            )
        if not caches:
            return []
        positions = []
        for cache in caches:
            position = cache.length
            if position >= cache.capacity:
                raise ValueError("KV cache is full")
            positions.append(position)
        hidden = self.embed(list(token_ids), np.asarray(positions))
        fused = fast_math and hidden.shape[0] > 1
        for layer_index, block in enumerate(self.blocks):
            layer_caches = [cache.layers[layer_index] for cache in caches]
            hidden = block.forward_decode_batch(
                hidden, layer_caches, positions, fast_math=fused
            )
        if fused:
            with profiling_span("logits"):
                normed = self.final_norm.forward(hidden)
                logits = (normed @ self.weights.unembedding).astype(np.float32)
            return [logits[i] for i in range(logits.shape[0])]
        return [self._logits(hidden[i]) for i in range(hidden.shape[0])]

    def decode_verify_step(
        self, token_ids: Sequence[int], cache: ModelKVCache
    ) -> list[np.ndarray]:
        """One multi-token verify forward for speculative decoding.

        ``token_ids`` is ``[next_token, draft_1, .., draft_k]`` — the token
        the decode session is emitting this step plus the proposer's
        guesses.  All ``k + 1`` rows are appended to ``cache`` and one
        next-token logits row per input is returned; the caller verifies
        the drafts against those logits and truncates the cache rows of the
        rejected tail (see :meth:`~repro.kvpool.cache.PagedKVCache.truncate`).

        Positions run strictly sequentially inside the single invocation —
        exactly the per-row discipline of :meth:`decode_step_batch` — so
        every logits row is bit-identical to the sequential
        :meth:`decode_step` it replaces *regardless of how many drafts were
        attached*: acceptance length can never perturb the numerics.  On
        real hardware this is one causal multi-row forward (the prefill
        kernel at decode time); here the fusion win is one model invocation
        per verify run instead of one per token.
        """
        token_ids = list(token_ids)
        if not token_ids:
            raise ValueError("verify requires at least one token")
        if cache.length + len(token_ids) > cache.capacity:
            raise ValueError(
                f"verify run of {len(token_ids)} tokens does not fit the cache "
                f"(length {cache.length}, capacity {cache.capacity})"
            )
        with profiling_span("verify"):
            return [self.decode_step(token_id, cache) for token_id in token_ids]

    def decode_verify_step_batch(
        self,
        token_lists: Sequence[Sequence[int]],
        caches: Sequence[ModelKVCache],
    ) -> list[list[np.ndarray]]:
        """One fused verify forward advancing ``n`` independent sequences.

        ``token_lists[i]`` is sequence ``i``'s ``[next_token, *drafts]``
        run (lengths may differ per sequence — acceptance windows shrink
        with budget and pool headroom); the return value is one logits
        block per sequence with one row per input token.  This is the
        speculative serving engine's hot path: the whole running set's
        verify runs execute in a *single* model invocation per engine step.
        Like :meth:`decode_step_batch`, rows are computed per sequence and
        per position, so outputs never depend on the batch composition.
        """
        if len(token_lists) != len(caches):
            raise ValueError(f"{len(token_lists)} token runs for {len(caches)} caches")
        return [
            self.decode_verify_step(token_ids, cache)
            for token_ids, cache in zip(token_lists, caches)
        ]

    def generate(
        self,
        prompt_ids: Sequence[int],
        *,
        max_new_tokens: int = 128,
        stop_ids: Sequence[int] = (),
        cache: ModelKVCache | None = None,
        after_prefill: Callable[[ModelKVCache], None] | None = None,
        sampler: Callable[[np.ndarray], int] = greedy_sample,
    ) -> GenerationResult:
        """Prefill the prompt and decode greedily (or with ``sampler``).

        Parameters
        ----------
        prompt_ids:
            Prompt token IDs (context + query).
        max_new_tokens:
            Maximum number of generated tokens.
        stop_ids:
            Token IDs that terminate generation (excluded from the output).
        cache:
            Optional pre-allocated cache.
        after_prefill:
            Hook called with the cache right after prefill — this is where
            the evaluation harness applies KV-cache quantization, mirroring
            real systems where the prefill pass runs at full precision and
            the *stored* cache is quantized for the decode phase.
        sampler:
            Maps logits to the next token ID (greedy by default).
        """
        # Validate before prefill so a bad budget cannot mutate the caller's
        # cache (or run the quantization hook) and then raise.
        check_max_new_tokens(max_new_tokens)
        cache = cache or self.new_cache()
        logits = self.prefill(prompt_ids, cache)
        if after_prefill is not None:
            after_prefill(cache)
        session = self.decode_session(
            cache,
            logits,
            max_new_tokens=max_new_tokens,
            stop_ids=stop_ids,
            sampler=sampler,
        )
        generated, stopped_by = session.run()
        return GenerationResult(
            token_ids=generated,
            n_prompt_tokens=len(list(prompt_ids)),
            stopped_by=stopped_by,
            cache=cache,
        )

    def generate_from_cache(
        self,
        cache: ModelKVCache,
        first_logits: np.ndarray,
        *,
        max_new_tokens: int = 128,
        stop_ids: Sequence[int] = (),
        sampler: Callable[[np.ndarray], int] = greedy_sample,
    ) -> GenerationResult:
        """Continue generation from an already-prefilled (possibly quantized) cache.

        This is the decode-only entry point used by the evaluation harness:
        one full-precision prefill is shared across methods, each method
        quantizes its own clone of the cache, and decoding restarts from the
        prefill logits.
        """
        n_prompt = cache.length
        session = self.decode_session(
            cache,
            first_logits,
            max_new_tokens=max_new_tokens,
            stop_ids=stop_ids,
            sampler=sampler,
        )
        generated, stopped_by = session.run()
        return GenerationResult(
            token_ids=generated,
            n_prompt_tokens=n_prompt,
            stopped_by=stopped_by,
            cache=cache,
        )

    def decode_session(
        self,
        cache: ModelKVCache,
        first_logits: np.ndarray,
        *,
        max_new_tokens: int = 128,
        stop_ids: Sequence[int] = (),
        sampler: Callable[[np.ndarray], int] = greedy_sample,
    ) -> DecodeSession:
        """Build a step-at-a-time decode session over the dense cache.

        This is the primitive both :meth:`generate` / :meth:`generate_from_cache`
        and the serving engine's dense backends drive; the continuous-batching
        scheduler calls :meth:`DecodeSession.advance` to interleave many
        sessions token by token.
        """
        return DecodeSession(
            lambda token_id: self.decode_step(token_id, cache),
            first_logits,
            max_new_tokens=max_new_tokens,
            stop_ids=stop_ids,
            sampler=sampler,
            has_capacity=cache.has_capacity,
            # Pool-backed caches report whether the next append will claim a
            # fresh page, which the fused batched round reserves between a
            # session's capacity check and its deferred forward.
            step_cost=getattr(cache, "next_token_block_cost", None),
        )

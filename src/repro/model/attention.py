"""Multi-head attention with KV caching.

Supports grouped-query attention (GQA), causal masking, RoPE or table
positional encodings, prefill over a block of tokens and single-token decode
against a layer cache.  The cache argument is duck-typed: anything exposing
``append``/``keys``/``values`` works, which is how the same attention code
drives both the dense :class:`~repro.model.kv_cache.LayerKVCache` and the
pool-backed :class:`~repro.kvpool.cache.PagedLayerView` (whose ``keys``
gathers and dequantizes packed context pages on the fly).

Decode hot-path notes
---------------------
``attend`` used to rebuild ``np.arange``/mask arrays and take two
``ascontiguousarray`` transpose copies of the full K/V history per layer per
step.  Three profiling-guided changes remove that:

- the strictly-causal decode case (one query at the last position) skips
  masking entirely — the mask is all-``False`` there, so ``np.where`` was a
  full-size copy that changed nothing;
- multi-query (prefill) masks are cached per ``(n_q, n_kv)`` for the
  standard "queries are the cache tail" layout;
- caches may expose ``kv_mirrors()`` returning head-major transposed K/V
  views maintained incrementally (see ``PagedLayerView``), which replaces
  both per-call transpose copies with buffer reuse;
- the q/k/v projections of one token run as a single GEMM against the
  concatenated ``[Wq | Wk | Wv]`` weight (sgemm computes each output column
  as an independent dot product over ``d_model``, so the merged columns are
  the separate GEMMs' columns — ``test_merged_projection_bit_identity``
  guards this), and softmax runs in place on the logits buffer.

All of these are bit-preserving: they feed the same GEMMs/ufuncs the same
operand values, only with fewer kernel launches and allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.config import ModelConfig
from repro.model.kv_cache import LayerKVCache
from repro.model.positional import apply_rope
from repro.profiling import span as profiling_span


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


#: Cached ``(expected_positions, mask)`` pairs keyed on ``(n_q, n_kv)`` for
#: the standard prefill layout (queries occupy the last ``n_q`` cache rows).
#: Bounded: cleared wholesale when it grows past ``_MASK_CACHE_MAX`` keys.
_MASK_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
_MASK_CACHE_MAX = 256


def _causal_mask(n_q: int, n_kv: int, positions: np.ndarray) -> np.ndarray | None:
    """Return the ``(n_q, n_kv)`` causal mask, or ``None`` when all-``False``.

    ``None`` means no key is masked — the caller may skip ``np.where``
    entirely (bit-identical: masking with an all-``False`` mask is a copy).
    Standard tail layouts are served from :data:`_MASK_CACHE`; arbitrary
    position vectors (e.g. the blockwise chunk path) fall back to computing
    the mask directly.
    """
    if n_q == 1:
        p = int(positions[0])
        if p >= n_kv - 1:
            return None
        return np.arange(n_kv)[None, :] > p
    first = int(positions[0])
    if first == n_kv - n_q:
        cached = _MASK_CACHE.get((n_q, n_kv))
        if cached is None:
            expected = np.arange(first, n_kv)
            mask = np.arange(n_kv)[None, :] > expected[:, None]
            expected.setflags(write=False)
            mask.setflags(write=False)
            if len(_MASK_CACHE) >= _MASK_CACHE_MAX:
                _MASK_CACHE.clear()
            _MASK_CACHE[(n_q, n_kv)] = cached = (expected, mask)
        expected, mask = cached
        if np.array_equal(positions, expected):
            return mask
    return np.arange(n_kv)[None, :] > np.asarray(positions)[:, None]


@dataclass(frozen=True)
class AttentionWeights:
    """Projection weights of one attention layer.

    Shapes: ``wq`` ``(n_heads, d_model, head_dim)``, ``wk``/``wv``
    ``(n_kv_heads, d_model, head_dim)``, ``wo`` ``(n_heads, head_dim,
    d_model)``.
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray


class AttentionLayer:
    """One causal self-attention layer operating on a single sequence."""

    def __init__(self, weights: AttentionWeights, config: ModelConfig):
        self.weights = weights
        self.config = config
        self._scale = config.attention_temperature / np.sqrt(config.head_dim)
        # Pre-flattened projection weights: (d_model, n_heads * head_dim)
        # per tensor, plus the concatenated [Wq | Wk | Wv] used by the
        # single-GEMM qkv projection.  sgemm computes output columns
        # independently, so the merged result's columns are exactly the
        # separate GEMMs' columns.
        self._wq_flat = self._flatten_weight(weights.wq)
        self._wk_flat = self._flatten_weight(weights.wk)
        self._wv_flat = self._flatten_weight(weights.wv)
        self._w_qkv = np.ascontiguousarray(
            np.concatenate([self._wq_flat, self._wk_flat, self._wv_flat], axis=1)
        )
        self._q_width = self._wq_flat.shape[1]
        self._kv_width = self._wk_flat.shape[1]

    @staticmethod
    def _flatten_weight(weight: np.ndarray) -> np.ndarray:
        """``(n_heads, d_model, head_dim)`` -> ``(d_model, n_heads * head_dim)``."""
        n_heads, d_model, head_dim = weight.shape
        return np.ascontiguousarray(
            weight.transpose(1, 0, 2).reshape(d_model, n_heads * head_dim)
        )

    @staticmethod
    def _project(hidden: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Apply a per-head projection ``(n_heads, d_model, head_dim)`` via one GEMM."""
        n_heads, d_model, head_dim = weight.shape
        flat = hidden @ weight.transpose(1, 0, 2).reshape(d_model, n_heads * head_dim)
        return flat.reshape(hidden.shape[0], n_heads, head_dim)

    @staticmethod
    def _as_f32(array: np.ndarray) -> np.ndarray:
        """Cast to float32 only when needed (``astype`` always copies)."""
        if array.dtype == np.float32:
            return array
        return array.astype(np.float32)

    def project_q(self, hidden: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Project hidden states to per-head queries ``(n, n_heads, head_dim)``."""
        with profiling_span("project"):
            head_dim = self.config.head_dim
            flat = hidden @ self._wq_flat
            q = flat.reshape(hidden.shape[0], -1, head_dim)
            if self.config.positional == "rope":
                q = apply_rope(q, positions, self.config.rope_theta)
            return self._as_f32(q)

    def project_kv(
        self, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project hidden states to keys/values ``(n, n_kv_heads, head_dim)``."""
        with profiling_span("project"):
            head_dim = self.config.head_dim
            k = (hidden @ self._wk_flat).reshape(hidden.shape[0], -1, head_dim)
            v = (hidden @ self._wv_flat).reshape(hidden.shape[0], -1, head_dim)
            if self.config.positional == "rope":
                k = apply_rope(k, positions, self.config.rope_theta)
            return self._as_f32(k), self._as_f32(v)

    def project_qkv(
        self, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project to queries, keys and values with one ``[Wq|Wk|Wv]`` GEMM.

        Column-wise sgemm independence makes the three slices bit-identical
        to :meth:`project_q` / :meth:`project_kv` on the same hidden states
        (guarded by the merged-projection parity test).
        """
        with profiling_span("project"):
            n = hidden.shape[0]
            head_dim = self.config.head_dim
            fused = hidden @ self._w_qkv
            q_w, kv_w = self._q_width, self._kv_width
            q = fused[:, :q_w].reshape(n, -1, head_dim)
            k = fused[:, q_w : q_w + kv_w].reshape(n, -1, head_dim)
            v = fused[:, q_w + kv_w :].reshape(n, -1, head_dim)
            if self.config.positional == "rope":
                q = apply_rope(q, positions, self.config.rope_theta)
                k = apply_rope(k, positions, self.config.rope_theta)
            return self._as_f32(q), self._as_f32(k), self._as_f32(v)

    def _expand_kv_heads(self, kv: np.ndarray) -> np.ndarray:
        """Repeat KV heads to match the number of query heads (GQA)."""
        group = self.config.gqa_group
        if group == 1:
            return kv
        return np.repeat(kv, group, axis=1)

    def _mirrors(self, cache) -> tuple[np.ndarray, np.ndarray] | None:
        """Head-major transposed K/V views of ``cache``, if it maintains them.

        Only usable when KV heads need no GQA expansion; callers fall back
        to the transpose-copy path otherwise.
        """
        if self.config.gqa_group != 1:
            return None
        getter = getattr(cache, "kv_mirrors", None)
        if getter is None:
            return None
        return getter()

    def attend(
        self,
        q: np.ndarray,
        keys: np.ndarray | None,
        values: np.ndarray | None,
        query_positions: np.ndarray,
        *,
        kv_mirrors: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> np.ndarray:
        """Causal attention of queries against cached keys/values.

        Parameters
        ----------
        q:
            ``(n_q, n_heads, head_dim)`` queries.
        keys, values:
            ``(n_kv, n_kv_heads, head_dim)`` cached keys and values; may be
            ``None`` when ``kv_mirrors`` is given.
        query_positions:
            Global position of each query; a query at position ``p`` may
            attend to cache rows ``0..p`` inclusive.
        kv_mirrors:
            Optional pre-transposed ``(n_heads, head_dim, n_kv)`` keys and
            ``(n_heads, n_kv, head_dim)`` values (the layout the per-head
            GEMMs consume), typically incrementally-maintained cache views.
            Replaces the two ``ascontiguousarray`` transpose copies; the
            operand *values* are identical, so results are bit-identical.

        Returns
        -------
        numpy.ndarray
            ``(n_q, d_model)`` attention output (after the output projection).
        """
        with profiling_span("attend"):
            if kv_mirrors is not None:
                k_heads, v_heads = kv_mirrors
                n_kv = k_heads.shape[2]
            else:
                keys_full = self._expand_kv_heads(keys)
                values_full = self._expand_kv_heads(values)
                k_heads = np.ascontiguousarray(keys_full.transpose(1, 2, 0))
                v_heads = np.ascontiguousarray(values_full.transpose(1, 0, 2))
                n_kv = keys_full.shape[0]
            # (n_heads, n_q, n_kv) logits via per-head GEMMs.  The matmul
            # output is freshly owned, so the scale runs in place.
            q_heads = np.ascontiguousarray(q.transpose(1, 0, 2))
            logits = q_heads @ k_heads
            np.multiply(logits, self._scale, out=logits)
            mask = _causal_mask(q.shape[0], n_kv, query_positions)
            if mask is not None:
                logits = np.where(mask[None, :, :], np.float32(-1e9), logits)
            # In-place softmax: same subtract/exp/divide as `softmax` on a
            # buffer this method owns, minus the temporaries.
            np.subtract(
                logits, np.max(logits, axis=-1, keepdims=True), out=logits
            )
            np.exp(logits, out=logits)
            probs = logits
            probs /= np.sum(probs, axis=-1, keepdims=True)
            context = probs @ v_heads  # (n_heads, n_q, head_dim)
            n_heads, n_q, head_dim = context.shape
            # Output projection: concatenate heads and apply one GEMM.
            context_flat = context.transpose(1, 0, 2).reshape(n_q, n_heads * head_dim)
            wo_flat = self.weights.wo.reshape(n_heads * head_dim, -1)
            return self._as_f32(context_flat @ wo_flat)

    def _attend_cache(
        self, q: np.ndarray, cache, positions: np.ndarray
    ) -> np.ndarray:
        """Attend ``q`` against everything in ``cache`` (mirrors when offered)."""
        mirrors = self._mirrors(cache)
        if mirrors is not None:
            return self.attend(q, None, None, positions, kv_mirrors=mirrors)
        return self.attend(q, cache.keys(), cache.values(), positions)

    def forward_prefill(
        self, hidden: np.ndarray, cache: LayerKVCache, positions: np.ndarray
    ) -> np.ndarray:
        """Process a block of tokens, appending their K/V to ``cache``."""
        q, k, v = self.project_qkv(hidden, positions)
        cache.append(k, v)
        return self._attend_cache(q, cache, positions)

    def forward_decode(
        self, hidden: np.ndarray, cache: LayerKVCache, position: int
    ) -> np.ndarray:
        """Process a single token at ``position``, appending its K/V to ``cache``."""
        positions = np.asarray([position])
        q, k, v = self.project_qkv(hidden, positions)
        cache.append(k, v)
        return self._attend_cache(q, cache, positions)

    def forward_decode_batch(
        self,
        hidden: np.ndarray,
        caches: Sequence[LayerKVCache],
        positions: Sequence[int],
        *,
        fast_math: bool = False,
    ) -> np.ndarray:
        """One decode position for each of ``n`` *independent* sequences.

        ``hidden`` is the stacked ``(n, d_model)`` input (one row per
        sequence); row ``i`` is projected, appended to ``caches[i]`` and
        attended against that sequence's own K/V, exactly like
        :meth:`forward_decode` would.

        The projection GEMMs deliberately run per row rather than as one
        stacked ``(n, d_model) @ W`` GEMM: BLAS accumulates a stacked GEMM's
        rows in a shape-dependent order, so a sequence's logits would depend
        on *who else is in the batch* — unacceptable under continuous
        batching, where the batch composition changes every step.  Per-row
        GEMMs keep the fused step bit-identical to the sequential path for
        any batch mix (attention is per-sequence regardless, since every
        sequence gathers its own paged KV).  On real hardware this is where
        a batched kernel would trade that reduction-order freedom for
        throughput; in this reproduction the fusion win is one model
        invocation per engine step plus the shared gather/bookkeeping path.

        ``fast_math=True`` opts into exactly that trade: the q/k/v
        projections run as whole-batch stacked GEMMs, so outputs may drift
        within float tolerance and depend on batch composition.  Attention
        itself stays per-sequence either way.
        """
        if fast_math and hidden.shape[0] > 1:
            pos_array = np.asarray(positions)
            q, k, v = self.project_qkv(hidden, pos_array)
            out = np.empty(
                (hidden.shape[0], self.weights.wo.shape[2]), dtype=np.float32
            )
            for i, cache in enumerate(caches):
                cache.append(k[i : i + 1], v[i : i + 1])
                out[i] = self._attend_cache(
                    q[i : i + 1], cache, pos_array[i : i + 1]
                )[0]
            return out
        out = np.empty((hidden.shape[0], self.weights.wo.shape[2]), dtype=np.float32)
        for i, (cache, position) in enumerate(zip(caches, positions)):
            out[i] = self.forward_decode(hidden[i : i + 1], cache, int(position))[0]
        return out

    def attend_with_external_kv(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        query_positions: np.ndarray,
    ) -> np.ndarray:
        """Attention against caller-provided K/V (used by the Cocktail blockwise path)."""
        return self.attend(q, keys, values, query_positions)

"""Multi-head attention with KV caching.

Supports grouped-query attention (GQA), causal masking, RoPE or table
positional encodings, prefill over a block of tokens and single-token decode
against a layer cache.  The cache argument is duck-typed: anything exposing
``append``/``keys``/``values`` works, which is how the same attention code
drives both the dense :class:`~repro.model.kv_cache.LayerKVCache` and the
pool-backed :class:`~repro.kvpool.cache.PagedLayerView` (whose ``keys``
gathers and dequantizes packed context pages on the fly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.model.config import ModelConfig
from repro.model.kv_cache import LayerKVCache
from repro.model.positional import apply_rope


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    x = np.asarray(x, dtype=np.float32)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


@dataclass(frozen=True)
class AttentionWeights:
    """Projection weights of one attention layer.

    Shapes: ``wq`` ``(n_heads, d_model, head_dim)``, ``wk``/``wv``
    ``(n_kv_heads, d_model, head_dim)``, ``wo`` ``(n_heads, head_dim,
    d_model)``.
    """

    wq: np.ndarray
    wk: np.ndarray
    wv: np.ndarray
    wo: np.ndarray


class AttentionLayer:
    """One causal self-attention layer operating on a single sequence."""

    def __init__(self, weights: AttentionWeights, config: ModelConfig):
        self.weights = weights
        self.config = config
        self._scale = config.attention_temperature / np.sqrt(config.head_dim)

    @staticmethod
    def _project(hidden: np.ndarray, weight: np.ndarray) -> np.ndarray:
        """Apply a per-head projection ``(n_heads, d_model, head_dim)`` via one GEMM."""
        n_heads, d_model, head_dim = weight.shape
        flat = hidden @ weight.transpose(1, 0, 2).reshape(d_model, n_heads * head_dim)
        return flat.reshape(hidden.shape[0], n_heads, head_dim)

    def project_q(self, hidden: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Project hidden states to per-head queries ``(n, n_heads, head_dim)``."""
        q = self._project(hidden, self.weights.wq)
        if self.config.positional == "rope":
            q = apply_rope(q, positions, self.config.rope_theta)
        return q.astype(np.float32)

    def project_kv(
        self, hidden: np.ndarray, positions: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Project hidden states to keys/values ``(n, n_kv_heads, head_dim)``."""
        k = self._project(hidden, self.weights.wk)
        v = self._project(hidden, self.weights.wv)
        if self.config.positional == "rope":
            k = apply_rope(k, positions, self.config.rope_theta)
        return k.astype(np.float32), v.astype(np.float32)

    def _expand_kv_heads(self, kv: np.ndarray) -> np.ndarray:
        """Repeat KV heads to match the number of query heads (GQA)."""
        group = self.config.gqa_group
        if group == 1:
            return kv
        return np.repeat(kv, group, axis=1)

    def attend(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        query_positions: np.ndarray,
    ) -> np.ndarray:
        """Causal attention of queries against cached keys/values.

        Parameters
        ----------
        q:
            ``(n_q, n_heads, head_dim)`` queries.
        keys, values:
            ``(n_kv, n_kv_heads, head_dim)`` cached keys and values.
        query_positions:
            Global position of each query; a query at position ``p`` may
            attend to cache rows ``0..p`` inclusive.

        Returns
        -------
        numpy.ndarray
            ``(n_q, d_model)`` attention output (after the output projection).
        """
        keys_full = self._expand_kv_heads(keys)
        values_full = self._expand_kv_heads(values)
        # (n_heads, n_q, n_kv) logits via per-head GEMMs.
        q_heads = np.ascontiguousarray(q.transpose(1, 0, 2))
        k_heads = np.ascontiguousarray(keys_full.transpose(1, 2, 0))
        logits = (q_heads @ k_heads) * self._scale
        n_kv = keys_full.shape[0]
        key_positions = np.arange(n_kv)
        mask = key_positions[None, :] > np.asarray(query_positions)[:, None]
        logits = np.where(mask[None, :, :], np.float32(-1e9), logits)
        probs = softmax(logits, axis=-1)
        v_heads = np.ascontiguousarray(values_full.transpose(1, 0, 2))
        context = probs @ v_heads  # (n_heads, n_q, head_dim)
        n_heads, n_q, head_dim = context.shape
        # Output projection: concatenate heads and apply one GEMM.
        context_flat = context.transpose(1, 0, 2).reshape(n_q, n_heads * head_dim)
        wo_flat = self.weights.wo.reshape(n_heads * head_dim, -1)
        return (context_flat @ wo_flat).astype(np.float32)

    def forward_prefill(
        self, hidden: np.ndarray, cache: LayerKVCache, positions: np.ndarray
    ) -> np.ndarray:
        """Process a block of tokens, appending their K/V to ``cache``."""
        q = self.project_q(hidden, positions)
        k, v = self.project_kv(hidden, positions)
        cache.append(k, v)
        return self.attend(q, cache.keys(), cache.values(), positions)

    def forward_decode(
        self, hidden: np.ndarray, cache: LayerKVCache, position: int
    ) -> np.ndarray:
        """Process a single token at ``position``, appending its K/V to ``cache``."""
        positions = np.asarray([position])
        q = self.project_q(hidden, positions)
        k, v = self.project_kv(hidden, positions)
        cache.append(k, v)
        return self.attend(q, cache.keys(), cache.values(), positions)

    def forward_decode_batch(
        self,
        hidden: np.ndarray,
        caches: Sequence[LayerKVCache],
        positions: Sequence[int],
    ) -> np.ndarray:
        """One decode position for each of ``n`` *independent* sequences.

        ``hidden`` is the stacked ``(n, d_model)`` input (one row per
        sequence); row ``i`` is projected, appended to ``caches[i]`` and
        attended against that sequence's own K/V, exactly like
        :meth:`forward_decode` would.

        The projection GEMMs deliberately run per row rather than as one
        stacked ``(n, d_model) @ W`` GEMM: BLAS accumulates a stacked GEMM's
        rows in a shape-dependent order, so a sequence's logits would depend
        on *who else is in the batch* — unacceptable under continuous
        batching, where the batch composition changes every step.  Per-row
        GEMMs keep the fused step bit-identical to the sequential path for
        any batch mix (attention is per-sequence regardless, since every
        sequence gathers its own paged KV).  On real hardware this is where
        a batched kernel would trade that reduction-order freedom for
        throughput; in this reproduction the fusion win is one model
        invocation per engine step plus the shared gather/bookkeeping path.
        """
        out = np.empty((hidden.shape[0], self.weights.wo.shape[2]), dtype=np.float32)
        for i, (cache, position) in enumerate(zip(caches, positions)):
            out[i] = self.forward_decode(hidden[i : i + 1], cache, int(position))[0]
        return out

    def attend_with_external_kv(
        self,
        q: np.ndarray,
        keys: np.ndarray,
        values: np.ndarray,
        query_positions: np.ndarray,
    ) -> np.ndarray:
        """Attention against caller-provided K/V (used by the Cocktail blockwise path)."""
        return self.attend(q, keys, values, query_positions)

"""Deterministic word-level tokenizer.

The synthetic datasets emit whitespace-separated word tokens, so the
tokenizer is a plain vocabulary lookup with a handful of special tokens.
It is deliberately simple — the paper's contribution is orthogonal to
tokenization — but it exposes the same encode/decode API a sub-word
tokenizer would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class SpecialTokens:
    """IDs of the reserved special tokens."""

    pad: int = 0
    unk: int = 1
    bos: int = 2
    eos: int = 3
    sep: int = 4

    @property
    def words(self) -> tuple[str, ...]:
        """Surface forms, indexed by ID."""
        return ("<pad>", "<unk>", "<bos>", "<eos>", "<sep>")


class Tokenizer:
    """Word-level tokenizer over a fixed vocabulary.

    Parameters
    ----------
    words:
        Iterable of vocabulary words (without the special tokens).  Order is
        preserved; duplicates are ignored.
    """

    def __init__(self, words: Iterable[str]):
        self.special = SpecialTokens()
        self._id_to_word: list[str] = list(self.special.words)
        self._word_to_id: dict[str, int] = {
            word: idx for idx, word in enumerate(self._id_to_word)
        }
        for word in words:
            if word not in self._word_to_id:
                self._word_to_id[word] = len(self._id_to_word)
                self._id_to_word.append(word)

    @property
    def vocab_size(self) -> int:
        """Number of known tokens, special tokens included."""
        return len(self._id_to_word)

    @property
    def eos_id(self) -> int:
        """ID of the end-of-sequence token."""
        return self.special.eos

    @property
    def sep_id(self) -> int:
        """ID of the separator token (used as fact terminator)."""
        return self.special.sep

    def token_to_id(self, word: str) -> int:
        """Return the ID of ``word`` (``<unk>`` if unknown)."""
        return self._word_to_id.get(word, self.special.unk)

    def id_to_token(self, token_id: int) -> str:
        """Return the surface form of ``token_id``."""
        if 0 <= token_id < len(self._id_to_word):
            return self._id_to_word[token_id]
        return self.special.words[self.special.unk]

    def encode(self, text: str | Sequence[str]) -> list[int]:
        """Encode a string (split on whitespace) or a word sequence."""
        words = text.split() if isinstance(text, str) else list(text)
        return [self.token_to_id(word) for word in words]

    def decode(self, token_ids: Sequence[int], *, skip_special: bool = True) -> str:
        """Decode token IDs back to a whitespace-joined string."""
        words = []
        special_ids = set(range(len(self.special.words)))
        for token_id in token_ids:
            if skip_special and int(token_id) in special_ids:
                continue
            words.append(self.id_to_token(int(token_id)))
        return " ".join(words)

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def __len__(self) -> int:
        return self.vocab_size

"""Cocktail: chunk-adaptive mixed-precision KV cache quantization.

Reproduction of "Cocktail: Chunk-Adaptive Mixed-Precision Quantization for
Long-Context LLM Inference" (DATE 2025).

The package is organised in layers:

``repro.quant``
    Quantization codecs (uniform affine, group, per-channel/per-token,
    non-uniform codebook), bit-packing and fused dequant-matmul kernels.
``repro.model``
    A pure-NumPy decoder-only transformer substrate with prefill/decode
    phases, a dense KV cache and constructed retrieval weights.
``repro.retrieval``
    Context chunking, query/chunk encoders (simulated Contriever, ADA-002,
    LLM-Embedder and an exact BM25) and cosine-similarity scoring.
``repro.datasets``
    Synthetic LongBench-style long-context task generators.
``repro.metrics``
    F1, ROUGE, classification-accuracy and code-similarity metrics.
``repro.baselines``
    FP16, Atom, KIVI and KVQuant KV-cache quantizers.
``repro.core``
    The Cocktail method: chunk-level quantization search, chunk reordering,
    the mixed-precision chunked KV cache, chunk-level blockwise attention
    (Algorithm 1) and the end-to-end pipeline.
``repro.hardware``
    Analytic GPU memory/latency/throughput model used for the efficiency
    experiments (Figures 4-6, Table V).
``repro.serving``
    The serving engine: request/result/token-event objects, a pluggable
    decode-backend registry (Cocktail dense/blockwise plus every baseline),
    streaming decode and a continuous-batching scheduler with FIFO
    admission, round-robin decode and capacity-aware preemption.
``repro.evaluation``
    Experiment runners and report formatting for every paper table/figure.
"""

from repro.core.config import CocktailConfig
from repro.core.pipeline import CocktailPipeline
from repro.core.search import ChunkQuantizationSearch
from repro.quant.dtypes import BitWidth
from repro.serving.engine import InferenceEngine
from repro.serving.request import GenerationRequest, SamplingParams, TokenEvent

__version__ = "1.1.0"

__all__ = [
    "BitWidth",
    "CocktailConfig",
    "CocktailPipeline",
    "ChunkQuantizationSearch",
    "InferenceEngine",
    "GenerationRequest",
    "SamplingParams",
    "TokenEvent",
    "__version__",
]

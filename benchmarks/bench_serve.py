"""Serving front-door load benchmark: requests/s, TTFT and TPOT under load.

Spins a real :class:`ServingServer` (HTTP/1.1 + SSE over a background
engine-step thread), fires a wave of concurrent streaming clients at
``POST /v1/completions`` and measures the service-level numbers a
deployment would watch: sustained requests per second, mean/p95 time to
first token and mean time per output token — client-observed wall clock
on one side, the engine's own :class:`RequestStats` latencies (carried in
each stream's final SSE chunk) on the other.  A
:class:`~repro.profiling.StepProfiler` rides along on the engine so every
sample also records where engine step time went (per-phase seconds and
fractions: schedule / gather / dequant / project / attend / mlp / logits /
verify / bookkeeping).

Alongside the human-readable table, the run appends one sample to
``benchmarks/results/BENCH_serve.json`` — the perf-trajectory artifact
(uploaded by the nightly workflow) whose series shows how serving
latency moves across commits rather than only within one review.

Scale the load with ``REPRO_BENCH_CLIENTS`` (default 32).  With
``REPRO_BENCH_GUARD=1`` the fresh tokens/s is checked against the last
committed sample from the same machine class (warn >10% drop, fail >25%).
"""

from __future__ import annotations

import asyncio
import os
import time

from benchmarks._guard import (
    append_sample,
    guard_enabled,
    guard_metric,
    load_series,
)
from benchmarks.conftest import RESULTS_DIR
from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.profiling import StepProfiler
from repro.serving import InferenceEngine
from repro.serving.server import ServerCore, ServingServer
from repro.serving.server.client import stream_completion
from repro.workloads.stats import percentile

N_CLIENTS = int(os.environ.get("REPRO_BENCH_CLIENTS", 32))
N_TOKENS = 12
TRAJECTORY = "BENCH_serve.json"


async def _drive_load(server: ServingServer, samples) -> dict:
    async def one_client(i: int) -> tuple[float, dict]:
        sample = samples[i % len(samples)]
        t0 = time.perf_counter()
        _text, final = await stream_completion(
            server.host,
            server.port,
            {
                "context": list(sample.context_words[:56]),
                "query": list(sample.query_words),
                "max_tokens": N_TOKENS,
                "seed": i,
            },
        )
        return time.perf_counter() - t0, final

    t_start = time.perf_counter()
    outcomes = await asyncio.gather(*(one_client(i) for i in range(N_CLIENTS)))
    elapsed = time.perf_counter() - t_start

    wall_latencies = [wall for wall, _ in outcomes]
    finals = [final for _, final in outcomes]
    ttfts = [f["stats"]["ttft_seconds"] for f in finals]
    tpots = [f["stats"]["tpot_seconds"] for f in finals if f["stats"]["tpot_seconds"]]
    queues = [f["stats"]["queue_seconds"] for f in finals]
    n_tokens = sum(f["usage"]["completion_tokens"] for f in finals)
    return {
        "n_clients": N_CLIENTS,
        "max_tokens": N_TOKENS,
        "elapsed_seconds": elapsed,
        "requests_per_second": N_CLIENTS / elapsed,
        "tokens_per_second": n_tokens / elapsed,
        "completion_tokens": n_tokens,
        "mean_ttft_seconds": sum(ttfts) / len(ttfts),
        "p95_ttft_seconds": percentile(ttfts, 0.95),
        "mean_tpot_seconds": sum(tpots) / len(tpots),
        "mean_queue_seconds": sum(queues) / len(queues),
        "mean_wall_seconds": sum(wall_latencies) / len(wall_latencies),
        "finish_reasons": sorted(
            {f["choices"][0]["finish_reason"] for f in finals}
        ),
    }


def test_bench_serve(results_dir):
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    engine = InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        max_running=8,
    )
    core = ServerCore(engine)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)

    async def scenario() -> dict:
        async with ServingServer(core) as server:
            return await _drive_load(server, samples)

    profiler = StepProfiler(engine)
    with profiler:
        metrics = asyncio.run(scenario())
    stats = core.stats_payload()
    metrics["engine_steps"] = stats["engine"]["n_steps"]
    metrics["mean_batch_occupancy"] = stats["engine"]["mean_batch_occupancy"]
    metrics["step_ms_p50"] = profiler.step_percentile(0.50) * 1e3
    metrics["step_ms_p95"] = profiler.step_percentile(0.95) * 1e3
    metrics["phase_seconds"] = dict(profiler.phase_times)
    metrics["phase_fraction"] = profiler.phase_breakdown()
    prior = load_series(RESULTS_DIR / TRAJECTORY)
    append_sample(
        RESULTS_DIR / TRAJECTORY, benchmark="serve", label="default", metrics=metrics
    )

    print(
        f"\n{metrics['n_clients']} concurrent streaming clients, "
        f"{metrics['max_tokens']} tokens each — "
        f"{metrics['requests_per_second']:.1f} req/s, "
        f"{metrics['tokens_per_second']:.0f} tok/s\n"
        f"TTFT mean {metrics['mean_ttft_seconds'] * 1e3:.1f} ms "
        f"(p95 {metrics['p95_ttft_seconds'] * 1e3:.1f} ms), "
        f"TPOT mean {metrics['mean_tpot_seconds'] * 1e3:.2f} ms, "
        f"queue mean {metrics['mean_queue_seconds'] * 1e3:.1f} ms\n"
        f"engine: {metrics['engine_steps']} steps, "
        f"batch occupancy {metrics['mean_batch_occupancy']:.2f}"
    )
    print(profiler.profile_table())

    # Every client completed and the stats reconcile exactly.
    assert stats["server"]["n_finished"] == N_CLIENTS
    assert stats["server"]["n_cancelled"] == 0
    assert stats["tenants"]["anonymous"]["completion_tokens"] == (
        metrics["completion_tokens"]
    )
    assert metrics["requests_per_second"] > 0
    assert metrics["mean_ttft_seconds"] > 0
    assert metrics["mean_tpot_seconds"] > 0
    # Concurrency actually happened: the fused step served multiple
    # sequences per round, and the wave finished far faster than serial
    # client latency would imply.
    assert metrics["mean_batch_occupancy"] > 1.5
    assert metrics["mean_wall_seconds"] * N_CLIENTS > metrics["elapsed_seconds"]

    if guard_enabled():
        guard_metric(
            prior,
            label="default",
            metric="tokens_per_second",
            fresh=metrics["tokens_per_second"],
            what="serving tokens/s",
        )

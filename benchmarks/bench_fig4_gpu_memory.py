"""Figure 4: GPU memory of the five methods on the four models (QMSum setting)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_table
from repro.evaluation.efficiency import memory_table
from repro.evaluation.setup import DEFAULT_METHODS
from repro.model.config import SIM_MODEL_NAMES, get_model_spec


def _run_fig4():
    return memory_table(SIM_MODEL_NAMES, DEFAULT_METHODS)


def test_fig4_gpu_memory(benchmark, results_dir):
    table = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    save_table(results_dir, "fig4_gpu_memory", table)
    print("\n" + table.to_text(precision=2))

    for model_name in SIM_MODEL_NAMES:
        column = get_model_spec(model_name).display_name
        fp16 = table.get("FP16", column)
        cocktail = table.get("Cocktail", column)
        # Cocktail uses the least memory of all methods on every model.
        for row in table.row_names:
            assert cocktail <= table.get(row, column) + 1e-9
        # Paper: 12%-42% reduction against the FP16 baseline.
        reduction = (fp16 - cocktail) / fp16
        assert 0.05 < reduction < 0.6

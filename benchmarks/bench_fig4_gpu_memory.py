"""Figure 4: GPU memory of the five methods on the four models (QMSum setting).

Alongside the paper's analytic table, the benchmark serves one
representative request per method through the paged serving engine and
reports the *measured* block-pool bytes next to the analytic estimate; the
per-method numbers are persisted as a JSON artifact
(``fig4_measured_pool_bytes.json``) so future changes can track the memory
trajectory.
"""

from __future__ import annotations

import json

from benchmarks.conftest import save_table
from repro.evaluation.efficiency import measured_pool_table, memory_table
from repro.evaluation.setup import DEFAULT_METHODS, method_display_name
from repro.model.config import SIM_MODEL_NAMES, get_model_spec


def _run_fig4():
    return memory_table(SIM_MODEL_NAMES, DEFAULT_METHODS)


def test_fig4_gpu_memory(benchmark, results_dir):
    table = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    save_table(results_dir, "fig4_gpu_memory", table)
    print("\n" + table.to_text(precision=2))

    for model_name in SIM_MODEL_NAMES:
        column = get_model_spec(model_name).display_name
        fp16 = table.get("FP16", column)
        cocktail = table.get("Cocktail", column)
        # Cocktail uses the least memory of all methods on every model.
        for row in table.row_names:
            assert cocktail <= table.get(row, column) + 1e-9
        # Paper: 12%-42% reduction against the FP16 baseline.
        reduction = (fp16 - cocktail) / fp16
        assert 0.05 < reduction < 0.6


def test_fig4_measured_pool_bytes(results_dir):
    """Measured pool bytes per method + the JSON trajectory artifact."""
    table = measured_pool_table(DEFAULT_METHODS)
    save_table(results_dir, "fig4_measured_pool_bytes", table)
    print("\n" + table.to_text(precision=0))

    artifact = {}
    for method in DEFAULT_METHODS:
        row = method_display_name(method)
        artifact[method] = {
            "measured_context_bytes": table.get(row, "measured B"),
            "analytic_context_bytes": table.get(row, "analytic B"),
            "context_fp16_bytes": table.get(row, "fp16 B"),
            "compression_vs_fp16": table.get(row, "x fp16"),
        }
    path = results_dir / "fig4_measured_pool_bytes.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    fp16_measured = artifact["fp16"]["measured_context_bytes"]
    # The unquantized method measures exactly its FP16 baseline.
    assert artifact["fp16"]["compression_vs_fp16"] == 1.0
    for method in DEFAULT_METHODS:
        entry = artifact[method]
        if method == "fp16":
            continue
        # Every quantized method's packed context pages beat FP16 pages.
        assert entry["measured_context_bytes"] < fp16_measured
        assert entry["compression_vs_fp16"] > 1.0

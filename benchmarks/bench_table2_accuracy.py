"""Table II: accuracy of FP16 / Atom / KIVI / KVQuant / Cocktail.

Regenerates the method-by-dataset accuracy comparison on the simulated
models.  By default two models and a few samples per dataset are evaluated to
keep the benchmark tractable on CPU; set ``REPRO_BENCH_MODELS`` and
``REPRO_BENCH_SAMPLES`` to widen the sweep (e.g. all four models).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import bench_model_names, bench_n_samples, save_table
from repro.evaluation.accuracy import AccuracyRunner
from repro.evaluation.setup import DEFAULT_METHODS

MODELS = bench_model_names()
N_SAMPLES = bench_n_samples(2)


def _run_table2():
    runner = AccuracyRunner(
        model_names=MODELS,
        methods=DEFAULT_METHODS,
        n_samples=N_SAMPLES,
        max_new_tokens=64,
        chunk_size=32,
        seed=0,
    )
    return runner.run()


def test_table2_accuracy(benchmark, results_dir):
    result = benchmark.pedantic(_run_table2, rounds=1, iterations=1)

    for model_name in MODELS:
        table = result.table_for_model(model_name)
        save_table(results_dir, f"table2_accuracy_{model_name}", table)
        print("\n" + table.to_text(precision=2))

    # Paper shape: Cocktail achieves the best average among quantized methods
    # and stays close to FP16; uniform INT4 methods lose more accuracy.
    for model_name in MODELS:
        averages = {
            method: result.average_score(model_name, method) for method in DEFAULT_METHODS
        }
        assert averages["fp16"] >= averages["atom"] - 1e-6
        assert averages["cocktail"] >= averages["atom"]
        assert averages["cocktail"] >= averages["kivi"]
        assert averages["cocktail"] >= averages["kvquant"] - 3.0
        assert averages["fp16"] - averages["cocktail"] <= 8.0

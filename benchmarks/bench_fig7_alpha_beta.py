"""Figure 7: impact of the alpha and beta threshold hyper-parameters."""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_n_samples, save_table
from repro.evaluation.ablation import alpha_beta_sweep

ALPHAS = (0.2, 0.6, 0.9)
BETAS = (0.05, 0.2, 0.5)
N_SAMPLES = bench_n_samples(2)


def _run_fig7():
    return alpha_beta_sweep(
        ALPHAS,
        BETAS,
        model_name="llama2-7b",
        dataset="qmsum",
        n_samples=N_SAMPLES,
        max_new_tokens=64,
    )


def test_fig7_alpha_beta(benchmark, results_dir):
    table = benchmark.pedantic(_run_fig7, rounds=1, iterations=1)
    save_table(results_dir, "fig7_alpha_beta", table)
    print("\n" + table.to_text(precision=2))

    # Paper shape: accuracy worsens as alpha grows (more chunks pushed to
    # INT2) and improves (then saturates) as beta grows (more chunks at FP16).
    smallest_alpha = [table.get(f"alpha={ALPHAS[0]}", f"beta={b}") for b in BETAS]
    largest_alpha = [table.get(f"alpha={ALPHAS[-1]}", f"beta={b}") for b in BETAS]
    assert sum(smallest_alpha) >= sum(largest_alpha)

    smallest_beta = [table.get(f"alpha={a}", f"beta={BETAS[0]}") for a in ALPHAS]
    largest_beta = [table.get(f"alpha={a}", f"beta={BETAS[-1]}") for a in ALPHAS]
    assert sum(largest_beta) >= sum(smallest_beta)

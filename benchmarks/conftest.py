"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper and writes the
resulting data to ``benchmarks/results/<name>.txt`` (and ``.csv``) so the
numbers survive the run.  Benchmark sizes are kept small by default; set the
``REPRO_BENCH_SAMPLES`` / ``REPRO_BENCH_MODELS`` environment variables to
scale the accuracy experiments up.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_n_samples(default: int) -> int:
    """Number of samples per dataset for accuracy benchmarks."""
    return int(os.environ.get("REPRO_BENCH_SAMPLES", default))


def bench_model_names() -> list[str]:
    """Models evaluated by the accuracy benchmark (Table II)."""
    raw = os.environ.get("REPRO_BENCH_MODELS", "llama2-7b,mistral-7b")
    return [name.strip() for name in raw.split(",") if name.strip()]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where benchmark tables/series are persisted."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: Path, name: str, table) -> None:
    """Persist a ResultTable as text and CSV next to the benchmarks."""
    (results_dir / f"{name}.txt").write_text(table.to_text() + "\n")
    (results_dir / f"{name}.csv").write_text(table.to_csv() + "\n")

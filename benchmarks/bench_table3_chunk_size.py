"""Table III: impact of the chunk size on model accuracy (QMSum / Llama2-7B)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_n_samples, save_table
from repro.evaluation.ablation import chunk_size_sweep

CHUNK_SIZES = (8, 16, 32, 64, 128, 256)
N_SAMPLES = bench_n_samples(3)


def _run_table3():
    return chunk_size_sweep(
        CHUNK_SIZES,
        model_name="llama2-7b",
        dataset="qmsum",
        n_samples=N_SAMPLES,
        max_new_tokens=64,
    )


def test_table3_chunk_size(benchmark, results_dir):
    table = benchmark.pedantic(_run_table3, rounds=1, iterations=1)
    save_table(results_dir, "table3_chunk_size", table)
    print("\n" + table.to_text(precision=2))

    scores = {size: table.get("Cocktail", str(size)) for size in CHUNK_SIZES}
    # Paper shape: performance is stable for chunk sizes up to 32 and degrades
    # once the chunks become too coarse.  At the small default sample count
    # the degradation is not monotone across every coarse size (whether a
    # particular sample's answer span straddles a coarse chunk boundary is
    # luck), so the assertions check that (a) the fine-grained sizes are never
    # worse than any coarse size and (b) at least one coarse size degrades.
    small_chunk_mean = (scores[8] + scores[16] + scores[32]) / 3
    coarse_scores = [scores[64], scores[128], scores[256]]
    assert small_chunk_mean >= max(coarse_scores) - 1e-9
    assert min(coarse_scores) < small_chunk_mean

"""Table V: module ablation (chunk-level search and chunk-level computation)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_n_samples, save_table
from repro.evaluation.ablation import module_ablation

N_SAMPLES = bench_n_samples(3)


def _run_table5():
    return module_ablation(
        model_name="llama2-7b",
        dataset="qmsum",
        n_samples=N_SAMPLES,
        max_new_tokens=64,
    )


def test_table5_module_ablation(benchmark, results_dir):
    table = benchmark.pedantic(_run_table5, rounds=1, iterations=1)
    save_table(results_dir, "table5_module_ablation", table)
    print("\n" + table.to_text(precision=2))

    score = {row: table.get(row, "Score") for row in table.row_names}
    memory = {row: table.get(row, "GPU Memory (GB)") for row in table.row_names}
    tpot = {row: table.get(row, "TPOT (us)") for row in table.row_names}

    # Without module I (chunk-level search) accuracy drops sharply while the
    # precision budget — hence memory and latency — stays Cocktail-like.
    assert score["w/o Module I"] < score["Cocktail"] - 5.0
    assert memory["w/o Module I"] < memory["FP16"]
    assert tpot["w/o Module I"] < tpot["FP16"]

    # Without module II (reordering) accuracy matches Cocktail but the
    # interleaved mixed-precision layout costs more memory and latency than
    # even the FP16 baseline.
    assert abs(score["w/o Module II"] - score["Cocktail"]) <= 10.0
    assert memory["w/o Module II"] > memory["FP16"]
    assert tpot["w/o Module II"] > tpot["FP16"]

    # Full Cocktail: accuracy close to FP16 at the lowest memory and latency.
    assert score["Cocktail"] >= score["FP16"] - 10.0
    assert memory["Cocktail"] <= min(memory.values()) + 1e-9
    assert tpot["Cocktail"] <= min(tpot.values()) + 1e-9

"""Sharded-pool scaling benchmark: tokens/s and goodput vs worker count.

Replays one merged interactive mix — the ``poisson`` arrivals plus the
``shared_prefix`` agent fleet, oracle-stamped — through
:class:`~repro.serving.sharded.ShardedEngine` pools of growing size under
the :class:`~repro.workloads.EngineDriver` virtual clock, and records the
scaling curve a deployment cares about:

* **aggregate tokens per (virtual) second** — one driver step is one
  concurrent round across all workers, so this is the modeled throughput
  of N engine replicas stepping in lockstep, deterministic from the seed
  and immune to CI wall-clock noise (the single-core methodology every
  `BENCH_workloads` number already uses; wall seconds ride along
  informationally);
* **goodput** — the SLO-attainment scorecard over the same run;
* **prefix-hit preservation** — total adopted pages ÷ the single-worker
  run's pages.  Cache-aware routing must keep the ``shared_prefix``
  fleet's warm hits co-located after sharding; naive round-robin would
  shred them.

Every worker count also replays bit-identically against the sequential
oracles (``check_oracles``), so the curve is only recorded for *correct*
sharded runs.  One sample per run appends to
``benchmarks/results/BENCH_sharded.json``.

Knobs: ``REPRO_BENCH_SHARDED_WORKERS`` (comma list, default ``1,2,4``),
``REPRO_WORKLOAD_SEED`` (default 0).  With ``REPRO_BENCH_GUARD=1`` the
2-worker speedup is checked against the last committed sample from the
same machine class (warn >10% drop, fail >25%).
"""

from __future__ import annotations

import os
import time

from benchmarks._guard import (
    append_sample,
    guard_enabled,
    guard_metric,
    load_series,
)
from benchmarks.conftest import RESULTS_DIR
from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import InferenceEngine, ShardedEngine
from repro.workloads import (
    EngineDriver,
    VirtualClock,
    WorkloadGenerator,
    WorkloadTrace,
    attach_oracles,
    build_report,
    check_oracles,
    stamp_hit_floors,
)

SEED = int(os.environ.get("REPRO_WORKLOAD_SEED", 0))
WORKER_COUNTS = tuple(
    int(n)
    for n in os.environ.get("REPRO_BENCH_SHARDED_WORKERS", "1,2,4").split(",")
    if n.strip()
)
TRAJECTORY = "BENCH_sharded.json"
BLOCK_SIZE = 16

#: Acceptance bars asserted on every run that includes 1 and 2 workers
#: (the ISSUE's headline): data parallelism must actually pay, and
#: cache-aware routing must keep most of the warm prefix hits.
MIN_SPEEDUP_2W = 1.6
MIN_HIT_PRESERVATION = 0.8


def _merged_trace(generator: WorkloadGenerator) -> WorkloadTrace:
    """``poisson`` + ``shared_prefix`` in one arrival stream.

    Request keys are disjoint (``poisson-*`` vs ``fleet-*``) and the only
    dependency target — the fleet leader — arrives at 0.0, so a stable
    sort by arrival preserves every ``depends_on`` precedence.  Arrival
    rates are raised above the scenario defaults so a single
    ``max_running=4`` worker is genuinely the bottleneck: a scaling curve
    measured on an unsaturated server would only show queueing noise.
    """
    poisson = generator.generate("poisson", SEED, n_requests=24, rate=8.0)
    shared = generator.generate("shared_prefix", SEED, fleet_size=8, rate=6.0)
    requests = sorted(
        poisson.requests + shared.requests, key=lambda r: r.arrival
    )
    trace = WorkloadTrace(
        scenario="poisson+shared_prefix",
        seed=SEED,
        requests=requests,
        metadata={
            "engine_hints": {},
            "parents": [poisson.scenario, shared.scenario],
        },
    )
    floors = stamp_hit_floors(trace, block_size=BLOCK_SIZE)
    trace.metadata["hit_floor_total"] = sum(floors.values())
    trace.metadata["_hit_floors"] = floors
    return trace


def _run_pool(trace: WorkloadTrace, n_workers: int, model, tokenizer, vocab) -> dict:
    clock = VirtualClock()

    def factory() -> InferenceEngine:
        return InferenceEngine(
            model,
            tokenizer,
            CocktailConfig(),
            lexicon=vocab.lexicon,
            max_running=4,
            clock=clock,
        )

    engine = factory() if n_workers == 1 else ShardedEngine(
        factory, n_workers=n_workers
    )
    t0 = time.perf_counter()
    run = EngineDriver(engine, clock=clock).run(trace)
    wall = time.perf_counter() - t0
    check_oracles(run)

    outcomes = run.outcomes.values()
    tokens = sum(len(o.token_ids) for o in outcomes)
    hit_blocks = sum(o.cache_hit_blocks for o in outcomes)
    report = build_report(run)
    metrics = {
        "n_workers": n_workers,
        "n_requests": len(trace),
        "n_steps": run.n_steps,
        "makespan_steps": run.makespan,
        "completion_tokens": tokens,
        "tokens_per_second": tokens / run.makespan if run.makespan else 0.0,
        "goodput": report.goodput,
        "cache_hit_blocks": hit_blocks,
        "wall_seconds": wall,
    }
    if n_workers > 1:
        metrics["workers"] = engine.worker_stats_payload()
        metrics["n_prefix_routed"] = engine.router.n_prefix_placed
        engine.close()
    return metrics


def test_bench_sharded(results_dir):
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)
    generator = WorkloadGenerator(samples, block_size=BLOCK_SIZE)

    trace = _merged_trace(generator)
    attach_oracles(
        trace,
        InferenceEngine(
            model, tokenizer, CocktailConfig(), lexicon=vocab.lexicon
        ),
    )

    series = {}
    for n_workers in WORKER_COUNTS:
        series[str(n_workers)] = _run_pool(
            trace, n_workers, model, tokenizer, vocab
        )

    metrics = {"seed": SEED, "series": series}
    base = series.get("1")
    two = series.get("2")
    if base and two:
        metrics["speedup_2w"] = (
            two["tokens_per_second"] / base["tokens_per_second"]
        )
        metrics["hit_preservation_2w"] = (
            two["cache_hit_blocks"] / base["cache_hit_blocks"]
            if base["cache_hit_blocks"]
            else 1.0
        )

    prior = load_series(RESULTS_DIR / TRAJECTORY)
    append_sample(
        RESULTS_DIR / TRAJECTORY,
        benchmark="sharded",
        label="default",
        metrics=metrics,
    )

    header = f"{'workers':>7} {'tok/s(virt)':>12} {'goodput':>8} " \
             f"{'hit blocks':>11} {'steps':>6} {'wall s':>7}"
    print("\n" + header)
    print("-" * len(header))
    for n_workers in WORKER_COUNTS:
        m = series[str(n_workers)]
        print(
            f"{n_workers:>7} {m['tokens_per_second']:>12.2f} "
            f"{m['goodput']:>8.2f} {m['cache_hit_blocks']:>11} "
            f"{m['n_steps']:>6} {m['wall_seconds']:>7.1f}"
        )

    for m in series.values():
        assert m["completion_tokens"] > 0
        assert m["goodput"] > 0
    if base and two:
        print(
            f"2-worker speedup {metrics['speedup_2w']:.2f}x, "
            f"prefix hits preserved {metrics['hit_preservation_2w']:.0%}"
        )
        assert metrics["speedup_2w"] >= MIN_SPEEDUP_2W, (
            f"2-worker aggregate tokens/s only {metrics['speedup_2w']:.2f}x "
            f"the single worker (need >= {MIN_SPEEDUP_2W}x)"
        )
        assert metrics["hit_preservation_2w"] >= MIN_HIT_PRESERVATION, (
            f"routing preserved only {metrics['hit_preservation_2w']:.0%} of "
            f"the single-worker prefix hits (need >= "
            f"{MIN_HIT_PRESERVATION:.0%})"
        )

    if guard_enabled() and "speedup_2w" in metrics:
        guard_metric(
            prior,
            label="default",
            metric="speedup_2w",
            fresh=metrics["speedup_2w"],
            what="2-worker sharded speedup",
        )

"""Workload scenario benchmark: SLO attainment from both harness drivers.

Every scenario in :data:`repro.workloads.SCENARIOS` is generated from a
seed, stamped with sequential-replay oracles, and replayed twice:

* through the :class:`EngineDriver` under a virtual clock — TTFT/TPOT in
  deterministic engine-step units, goodput against the step-unit SLO
  deadlines, full oracle verification;
* through the :class:`HttpDriver` against a live :class:`ServingServer`
  (a subset of scenarios, to keep the run short) — the same oracles over
  real SSE streaming, with wall-clock latencies reported for trend
  tracking only.

Each run appends one sample to ``benchmarks/results/BENCH_workloads.json``
— per-scenario TTFT/TPOT p50/p95, goodput, acceptance rate, cached-token
and preemption totals, from both drivers.  This series is the measured
bar for ROADMAP item 3's adaptive-control work: a knob change must move
these numbers, on these scenarios, to count.

Assertions here are correctness and *ratio* checks only — absolute
wall-clock time is never asserted (CI machines are noisy); the virtual
clock numbers are exact and reproducible from the seed.

Knobs: ``REPRO_WORKLOAD_SEED`` (default 0), ``REPRO_WORKLOAD_SCENARIOS``
(comma list, default: all).  With ``REPRO_BENCH_GUARD=1`` the mean
engine-driver goodput is checked against the last committed sample from
the same machine class (warn >10% drop, fail >25%) — goodput is computed
on the virtual clock, so the guard is deterministic here.
"""

from __future__ import annotations

import asyncio
import os

from benchmarks._guard import (
    append_sample,
    guard_enabled,
    guard_metric,
    load_series,
)
from benchmarks.conftest import RESULTS_DIR
from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import InferenceEngine
from repro.serving.server import ServerCore, ServingServer
from repro.workloads import (
    SCENARIOS,
    EngineDriver,
    HttpDriver,
    SloSpec,
    VirtualClock,
    WorkloadGenerator,
    attach_oracles,
    build_report,
    check_oracles,
)

SEED = int(os.environ.get("REPRO_WORKLOAD_SEED", 0))
SCENARIO_NAMES = tuple(
    name
    for name in os.environ.get(
        "REPRO_WORKLOAD_SCENARIOS", ",".join(sorted(SCENARIOS))
    ).split(",")
    if name
)
#: HTTP replays are wall-clock bound; a representative subset keeps the
#: bench fast while still sampling steady-state, sharing and churn.
HTTP_SCENARIOS = ("poisson", "shared_prefix", "cancel_storm")
TRAJECTORY = "BENCH_workloads.json"


def _fresh_engine(model, tokenizer, vocab, **hints) -> InferenceEngine:
    return InferenceEngine(
        model, tokenizer, CocktailConfig(), lexicon=vocab.lexicon, **hints
    )


def test_bench_workloads(results_dir):
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)
    generator = WorkloadGenerator(samples, block_size=16)

    traces = {}
    for name in SCENARIO_NAMES:
        trace = generator.generate(name, SEED)
        attach_oracles(trace, _fresh_engine(model, tokenizer, vocab))
        traces[name] = trace

    # -- engine driver: deterministic virtual-step latencies -----------------
    engine_reports = {}
    for name, trace in traces.items():
        clock = VirtualClock()
        engine = _fresh_engine(
            model, tokenizer, vocab,
            max_running=4, clock=clock, **trace.engine_hints,
        )
        run = EngineDriver(engine, clock=clock).run(trace)
        check_oracles(run)
        engine_reports[name] = build_report(run)

    # -- HTTP driver: the same oracles over real SSE streaming ---------------
    async def http_pass() -> dict:
        reports = {}
        for name in HTTP_SCENARIOS:
            if name not in traces:
                continue
            core = ServerCore(
                _fresh_engine(model, tokenizer, vocab, max_running=4)
            )
            async with ServingServer(core) as server:
                driver = HttpDriver(server.host, server.port, time_scale=0.01)
                run = await driver.run(trace=traces[name])
            check_oracles(run)
            # Wall-clock deadlines are trend data, not pass/fail: score
            # against a deliberately generous seconds-scale spec.
            reports[name] = build_report(run, SloSpec().scaled(1.0))
        return reports

    http_reports = asyncio.run(http_pass())

    mean_goodput = sum(r.goodput for r in engine_reports.values()) / max(
        1, len(engine_reports)
    )
    metrics = {
        "seed": SEED,
        "mean_engine_goodput": mean_goodput,
        "engine": {n: r.to_payload() for n, r in engine_reports.items()},
        "http": {n: r.to_payload() for n, r in http_reports.items()},
    }
    prior = load_series(RESULTS_DIR / TRAJECTORY)
    append_sample(
        RESULTS_DIR / TRAJECTORY,
        benchmark="workloads",
        label="default",
        metrics=metrics,
    )

    header = f"{'scenario':<14} {'drv':<6} {'n':>3} {'goodput':>8} " \
             f"{'ttft_p50':>9} {'ttft_p95':>9} {'tpot_p50':>9} {'cached':>7}"
    print("\n" + header)
    print("-" * len(header))
    for driver_name, reports in (("engine", engine_reports), ("http", http_reports)):
        for name, report in reports.items():
            inter = report.classes.get("interactive") or next(
                iter(report.classes.values())
            )
            fmt = (lambda v: f"{v:9.3f}" if v is not None else f"{'-':>9}")
            print(
                f"{name:<14} {driver_name:<6} {report.n_requests:>3} "
                f"{report.goodput:>8.2f} {fmt(inter.ttft_p50)} "
                f"{fmt(inter.ttft_p95)} {fmt(inter.tpot_p50)} "
                f"{report.cached_tokens:>7}"
            )

    # Correctness gates (oracle checks above are the real bar): the
    # engine-driver pass must complete everything it didn't cancel, and
    # prefix-sharing scenarios must actually share.
    for name, report in engine_reports.items():
        assert report.n_completed + report.n_cancelled == report.n_requests
        assert report.n_rejected == 0
    if "shared_prefix" in engine_reports:
        assert engine_reports["shared_prefix"].cached_tokens > 0
    if "cancel_storm" in engine_reports:
        assert engine_reports["cancel_storm"].n_cancelled > 0
    # The virtual-clock goodput is deterministic: under default deadlines
    # the steady-state scenarios must fully attain their SLOs.
    if "poisson" in engine_reports:
        assert engine_reports["poisson"].goodput == 1.0

    if guard_enabled():
        guard_metric(
            prior,
            label="default",
            metric="mean_engine_goodput",
            fresh=mean_goodput,
            what="mean engine goodput",
        )

"""Workload scenario benchmark: SLO attainment from both harness drivers.

Every scenario in :data:`repro.workloads.SCENARIOS` is generated from a
seed, stamped with sequential-replay oracles, and replayed twice:

* through the :class:`EngineDriver` under a virtual clock — TTFT/TPOT in
  deterministic engine-step units, goodput against the step-unit SLO
  deadlines, full oracle verification;
* through the :class:`HttpDriver` against a live :class:`ServingServer`
  (a subset of scenarios, to keep the run short) — the same oracles over
  real SSE streaming, with wall-clock latencies reported for trend
  tracking only.

Each run appends one sample to ``benchmarks/results/BENCH_workloads.json``
— per-scenario TTFT/TPOT p50/p95, goodput, acceptance rate, cached-token
and preemption totals, from both drivers.  This series is the measured
bar for ROADMAP item 3's adaptive-control work: a knob change must move
these numbers, on these scenarios, to count.

Assertions here are correctness and *ratio* checks only — absolute
wall-clock time is never asserted (CI machines are noisy); the virtual
clock numbers are exact and reproducible from the seed.

Knobs: ``REPRO_WORKLOAD_SEED`` (default 0), ``REPRO_WORKLOAD_SCENARIOS``
(comma list, default: all).  With ``REPRO_BENCH_GUARD=1`` the mean
engine-driver goodput is checked against the last committed sample from
the same machine class (warn >10% drop, fail >25%) — goodput is computed
on the virtual clock, so the guard is deterministic here.
"""

from __future__ import annotations

import asyncio
import os

from benchmarks._guard import (
    append_sample,
    guard_enabled,
    guard_metric,
    load_series,
)
from benchmarks.conftest import RESULTS_DIR
from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import InferenceEngine, SpeculativeConfig
from repro.serving.adaptive import PrefillBudgetController, SloPolicy
from repro.serving.server import ServerCore, ServingServer
from repro.workloads import (
    SCENARIOS,
    EngineDriver,
    HttpDriver,
    SloSpec,
    StepCostModel,
    VirtualClock,
    WorkloadGenerator,
    attach_oracles,
    build_report,
    check_oracles,
)

SEED = int(os.environ.get("REPRO_WORKLOAD_SEED", 0))
SCENARIO_NAMES = tuple(
    name
    for name in os.environ.get(
        "REPRO_WORKLOAD_SCENARIOS", ",".join(sorted(SCENARIOS))
    ).split(",")
    if name
)
#: HTTP replays are wall-clock bound; a representative subset keeps the
#: bench fast while still sampling steady-state, sharing and churn.
HTTP_SCENARIOS = ("poisson", "shared_prefix", "cancel_storm")
TRAJECTORY = "BENCH_workloads.json"


def _fresh_engine(model, tokenizer, vocab, **hints) -> InferenceEngine:
    return InferenceEngine(
        model, tokenizer, CocktailConfig(), lexicon=vocab.lexicon, **hints
    )


def test_bench_workloads(results_dir):
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)
    generator = WorkloadGenerator(samples, block_size=16)

    traces = {}
    for name in SCENARIO_NAMES:
        trace = generator.generate(name, SEED)
        attach_oracles(trace, _fresh_engine(model, tokenizer, vocab))
        traces[name] = trace

    # -- engine driver: deterministic virtual-step latencies -----------------
    engine_reports = {}
    for name, trace in traces.items():
        clock = VirtualClock()
        engine = _fresh_engine(
            model, tokenizer, vocab,
            max_running=4, clock=clock, **trace.engine_hints,
        )
        run = EngineDriver(engine, clock=clock).run(trace)
        check_oracles(run)
        engine_reports[name] = build_report(run)

    # -- HTTP driver: the same oracles over real SSE streaming ---------------
    async def http_pass() -> dict:
        reports = {}
        for name in HTTP_SCENARIOS:
            if name not in traces:
                continue
            core = ServerCore(
                _fresh_engine(model, tokenizer, vocab, max_running=4)
            )
            async with ServingServer(core) as server:
                driver = HttpDriver(server.host, server.port, time_scale=0.01)
                run = await driver.run(trace=traces[name])
            check_oracles(run)
            # Wall-clock deadlines are trend data, not pass/fail: score
            # against a deliberately generous seconds-scale spec.
            reports[name] = build_report(run, SloSpec().scaled(1.0))
        return reports

    http_reports = asyncio.run(http_pass())

    mean_goodput = sum(r.goodput for r in engine_reports.values()) / max(
        1, len(engine_reports)
    )
    metrics = {
        "seed": SEED,
        "mean_engine_goodput": mean_goodput,
        "engine": {n: r.to_payload() for n, r in engine_reports.items()},
        "http": {n: r.to_payload() for n, r in http_reports.items()},
    }
    prior = load_series(RESULTS_DIR / TRAJECTORY)
    append_sample(
        RESULTS_DIR / TRAJECTORY,
        benchmark="workloads",
        label="default",
        metrics=metrics,
    )

    header = f"{'scenario':<14} {'drv':<6} {'n':>3} {'goodput':>8} " \
             f"{'ttft_p50':>9} {'ttft_p95':>9} {'tpot_p50':>9} {'cached':>7}"
    print("\n" + header)
    print("-" * len(header))
    for driver_name, reports in (("engine", engine_reports), ("http", http_reports)):
        for name, report in reports.items():
            inter = report.classes.get("interactive") or next(
                iter(report.classes.values())
            )
            fmt = (lambda v: f"{v:9.3f}" if v is not None else f"{'-':>9}")
            print(
                f"{name:<14} {driver_name:<6} {report.n_requests:>3} "
                f"{report.goodput:>8.2f} {fmt(inter.ttft_p50)} "
                f"{fmt(inter.ttft_p95)} {fmt(inter.tpot_p50)} "
                f"{report.cached_tokens:>7}"
            )

    # Correctness gates (oracle checks above are the real bar): the
    # engine-driver pass must complete everything it didn't cancel, and
    # prefix-sharing scenarios must actually share.
    for name, report in engine_reports.items():
        assert report.n_completed + report.n_cancelled == report.n_requests
        assert report.n_rejected == 0
    if "shared_prefix" in engine_reports:
        assert engine_reports["shared_prefix"].cached_tokens > 0
    if "cancel_storm" in engine_reports:
        assert engine_reports["cancel_storm"].n_cancelled > 0
    # The virtual-clock goodput is deterministic: under default deadlines
    # the steady-state scenarios must fully attain their SLOs.
    if "poisson" in engine_reports:
        assert engine_reports["poisson"].goodput == 1.0

    if guard_enabled():
        guard_metric(
            prior,
            label="default",
            metric="mean_engine_goodput",
            fresh=mean_goodput,
            what="mean engine goodput",
        )


# -- adaptive A/B: ROADMAP item 3's measured bar ------------------------------

#: Heavier-than-default shapes so the static arm actually congests: more
#: long documents arriving faster (``mixed``) and a deeper prefill volley
#: (``long_prefill``).  Both arms replay the *same* trace.
AB_OVERRIDES = {
    "mixed": dict(n_short=10, n_long=5, rate=2.5, long_context=(160, 220)),
    "long_prefill": dict(
        n_requests=8, context_range=(200, 260), max_new_tokens=6
    ),
}

#: Cost-aware virtual clock shared by both arms: a step is charged for the
#: prompt tokens it prefilled and the forward rows it computed, so a
#: controller that shapes that work moves the measured latencies.  Token
#: outputs never depend on the clock — oracles stay bit-identical.
AB_COST_MODEL = StepCostModel(
    base=1.0, prefill_token_cost=0.08, forward_row_cost=0.02
)

#: The adaptive arm's prefill controller aims each step at this cost.
AB_TPOT_TARGET = 6.0


def _ab_engine(model, tokenizer, vocab, clock, hints, *, adaptive):
    kwargs = dict(
        max_running=4,
        clock=clock,
        speculative=SpeculativeConfig(k=4, adaptive=adaptive),
    )
    kwargs.update(hints)
    if adaptive:
        kwargs["prefill_controller"] = PrefillBudgetController(
            target=AB_TPOT_TARGET,
            min_budget=8,
            max_budget=96,
            start_budget=hints.get("max_prefill_tokens_per_step"),
        )
        kwargs["slo_policy"] = SloPolicy()
    return _fresh_engine(model, tokenizer, vocab, **kwargs)


def test_bench_workloads_adaptive_ab(results_dir):
    """A/B the adaptive control loops against the static knobs.

    Both arms replay identical traces under the same cost-aware virtual
    clock with speculation at ``k=4``; the *on* arm additionally runs the
    adaptive draft windows, the TPOT-targeted prefill controller and the
    SLO-aware scheduler.  The measured bar (ROADMAP item 3): per-scenario
    goodput must not regress on either scenario and must strictly improve
    on at least one, with every oracle still bit-identical.
    """
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)
    generator = WorkloadGenerator(samples, block_size=16)

    scenarios = {}
    for name, overrides in AB_OVERRIDES.items():
        trace = generator.generate(name, SEED, **overrides)
        attach_oracles(trace, _fresh_engine(model, tokenizer, vocab))
        scenarios[name] = trace

    results = {}
    for name, trace in scenarios.items():
        arms = {}
        for arm, adaptive in (("off", False), ("on", True)):
            clock = VirtualClock()
            engine = _ab_engine(
                model, tokenizer, vocab, clock, trace.engine_hints,
                adaptive=adaptive,
            )
            run = EngineDriver(
                engine, clock=clock, cost_model=AB_COST_MODEL
            ).run(trace)
            check_oracles(run)
            report = build_report(run)
            arms[arm] = {
                "goodput": report.goodput,
                "n_steps": run.n_steps,
                "makespan": run.makespan,
                "classes": {
                    cls: rep.goodput for cls, rep in report.classes.items()
                },
            }
        results[name] = arms

    header = f"{'scenario':<14} {'arm':<4} {'goodput':>8} {'steps':>6} {'makespan':>9}"
    print("\n" + header)
    print("-" * len(header))
    for name, arms in results.items():
        for arm, row in arms.items():
            print(
                f"{name:<14} {arm:<4} {row['goodput']:>8.3f} "
                f"{row['n_steps']:>6} {row['makespan']:>9.1f}"
            )

    mean_on = sum(a["on"]["goodput"] for a in results.values()) / len(results)
    mean_off = sum(a["off"]["goodput"] for a in results.values()) / len(results)
    metrics = {
        "seed": SEED,
        "mean_on_goodput": mean_on,
        "mean_off_goodput": mean_off,
        "scenarios": results,
    }
    prior = load_series(RESULTS_DIR / TRAJECTORY)
    append_sample(
        RESULTS_DIR / TRAJECTORY,
        benchmark="workloads",
        label="adaptive_ab",
        metrics=metrics,
    )

    # The acceptance bar: adaptive never loses, and strictly wins somewhere.
    for name, arms in results.items():
        assert arms["on"]["goodput"] >= arms["off"]["goodput"], (
            f"{name}: adaptive-on goodput {arms['on']['goodput']:.3f} fell "
            f"below adaptive-off {arms['off']['goodput']:.3f}"
        )
    assert any(
        arms["on"]["goodput"] > arms["off"]["goodput"]
        for arms in results.values()
    ), "adaptive control moved no scenario's goodput"

    if guard_enabled():
        guard_metric(
            prior,
            label="adaptive_ab",
            metric="mean_on_goodput",
            fresh=mean_on,
            what="mean adaptive-on goodput",
        )

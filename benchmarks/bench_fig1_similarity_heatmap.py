"""Figure 1: similarity heatmap between a long passage and multiple queries.

The paper splits one long passage into 89 chunks, scores it against 10
queries and observes that only a small fraction of chunks is relevant to any
query.  This benchmark regenerates the heatmap (as a per-query relevant-chunk
fraction series) on a synthetic long passage.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.report import ResultTable
from repro.retrieval.chunking import chunk_words
from repro.retrieval.dense import ContrieverEncoder
from repro.retrieval.similarity import relevant_chunk_fraction, similarity_heatmap

N_QUERIES = 10
CHUNK_SIZE = 32


def _build_heatmap() -> tuple[np.ndarray, int]:
    vocab = build_vocabulary()
    encoder = ContrieverEncoder(vocab.lexicon)
    samples = build_dataset("multinews", N_QUERIES, vocab=vocab, seed=1)
    # One long passage (the first sample's context), ten different queries.
    chunks, _ = chunk_words(list(samples[0].context_words), CHUNK_SIZE)
    chunk_texts = [chunk.text for chunk in chunks]
    queries = [sample.query_text for sample in samples]
    heatmap = similarity_heatmap(encoder, queries, chunk_texts)
    return heatmap, len(chunk_texts)


def test_fig1_similarity_heatmap(benchmark, results_dir):
    heatmap, n_chunks = benchmark.pedantic(_build_heatmap, rounds=1, iterations=1)
    fractions = relevant_chunk_fraction(heatmap, relative_threshold=0.5)

    table = ResultTable(
        title=f"Figure 1: fraction of relevant chunks per query ({n_chunks} chunks)",
        row_names=[f"query {i}" for i in range(heatmap.shape[0])],
        column_names=["max similarity", "min similarity", "relevant fraction"],
    )
    for i in range(heatmap.shape[0]):
        table.set(f"query {i}", "max similarity", float(heatmap[i].max()))
        table.set(f"query {i}", "min similarity", float(heatmap[i].min()))
        table.set(f"query {i}", "relevant fraction", float(fractions[i]))
    save_table(results_dir, "fig1_similarity_heatmap", table)
    print("\n" + table.to_text(precision=3))

    # Paper observation: most chunks are irrelevant to any given query.
    assert float(fractions.mean()) < 0.35
    assert heatmap.shape == (N_QUERIES, n_chunks)

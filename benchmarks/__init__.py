"""Paper-reproduction benchmarks (one module per table/figure)."""

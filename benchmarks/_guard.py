"""Shared perf-trajectory plumbing for the ``BENCH_*.json`` benchmarks.

Every throughput benchmark appends one sample per run to a JSON series
under ``benchmarks/results/`` — the artifact whose history shows how a
number moved across commits.  This module centralises the three pieces
they all need (first grown ad hoc in ``bench_decode.py``):

* :func:`machine_class` — a coarse host fingerprint stamped on every
  sample.  Absolute throughput only compares within one machine class;
  the guard skips references recorded on different hardware.
* :func:`load_series` / :func:`append_sample` — the newest-last JSON
  series with ``_``-prefixed scratch keys stripped from the persisted
  metrics.
* :func:`guard_metric` — the ``REPRO_BENCH_GUARD=1`` soft regression
  guard: against the most recent committed sample with the same label
  and machine class, warn on a >10% drop and fail the test on a >25%
  drop.  With no comparable committed sample the guard prints a notice
  and passes — fresh machines and fresh benchmarks bootstrap quietly.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

#: Soft regression thresholds (fraction of the metric lost vs the last
#: committed same-class sample).
WARN_DROP = 0.10
FAIL_DROP = 0.25


def machine_class() -> str:
    """Coarse host fingerprint stamped on every sample."""
    return f"{platform.machine()}-{os.cpu_count()}cpu"


def guard_enabled() -> bool:
    """Whether the ``REPRO_BENCH_GUARD=1`` regression guard is armed."""
    return os.environ.get("REPRO_BENCH_GUARD") == "1"


def load_series(path: Path) -> list[dict]:
    """The committed sample series at ``path`` (empty if absent/corrupt)."""
    if path.exists():
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError:
            return []
    return []


def append_sample(path: Path, *, benchmark: str, label: str, metrics: dict) -> dict:
    """Append one sample (newest last); returns the appended entry.

    Metric keys starting with ``_`` are scratch (profile tables, raw token
    streams) and are not persisted.
    """
    series = load_series(path)
    entry = {
        "benchmark": benchmark,
        "label": label,
        "machine": machine_class(),
        "unix_time": int(time.time()),
        "metrics": {k: v for k, v in metrics.items() if not k.startswith("_")},
    }
    series.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(series, indent=2) + "\n")
    return entry


def guard_metric(
    prior: list[dict],
    *,
    label: str,
    metric: str,
    fresh: float,
    what: str | None = None,
) -> None:
    """Soft regression guard vs the last committed ``label`` sample.

    ``prior`` must be the series loaded *before* the fresh sample was
    appended.  Call only when :func:`guard_enabled`.
    """
    what = what or metric
    committed = [
        sample["metrics"][metric]
        for sample in prior
        if sample.get("label") == label
        and sample.get("machine") == machine_class()
        and sample.get("metrics", {}).get(metric)
    ]
    if not committed:
        print(
            f"\nguard: no committed {label!r} sample from this machine class "
            f"({machine_class()}); skipping comparison"
        )
        return
    reference = committed[-1]
    drop = (reference - fresh) / reference
    if drop > WARN_DROP:
        print(
            f"\nWARNING: {what} dropped {drop:.0%} vs committed "
            f"{label!r} sample ({fresh:.0f} vs {reference:.0f})"
        )
    assert drop <= FAIL_DROP, (
        f"{what} regression: {fresh:.0f} is {drop:.0%} below the "
        f"committed {label!r} sample ({reference:.0f})"
    )

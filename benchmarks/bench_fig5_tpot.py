"""Figure 5: time per output token (TPOT) of the five methods on the four models.

``test_fig5_batched_decode`` complements the analytic TPOT model with the
*measured* execution profile of the serving engine's fused decode round:
model-forward invocations per generated token and mean batch occupancy,
batched vs sequential, on the same concurrent request mix
(``fig5_batched_decode.csv``).  ``test_fig5_speculative`` measures the next
rung on the same ladder: with n-gram speculative decoding on a repetitive
workload the engine issues measurably fewer target-model forwards per token
than the already-batched baseline, at bit-identical outputs
(``fig5_speculative.csv``).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_table
from repro.evaluation.efficiency import (
    batched_decode_table,
    speculative_decode_table,
    tpot_table,
)
from repro.evaluation.setup import DEFAULT_METHODS
from repro.model.config import SIM_MODEL_NAMES, get_model_spec


def _run_fig5():
    return tpot_table(SIM_MODEL_NAMES, DEFAULT_METHODS)


def test_fig5_tpot(benchmark, results_dir):
    table = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)
    save_table(results_dir, "fig5_tpot", table)
    print("\n" + table.to_text(precision=0))

    for model_name in SIM_MODEL_NAMES:
        column = get_model_spec(model_name).display_name
        fp16 = table.get("FP16", column)
        cocktail = table.get("Cocktail", column)
        # Cocktail has the lowest TPOT on every model.
        for row in table.row_names:
            assert cocktail <= table.get(row, column) + 1e-9
        # The reduction against FP16 is substantial (paper: 32%-52%).
        reduction = (fp16 - cocktail) / fp16
        assert reduction > 0.10


def test_fig5_batched_decode(benchmark, results_dir):
    table = benchmark.pedantic(batched_decode_table, rounds=1, iterations=1)
    save_table(results_dir, "fig5_batched_decode", table)
    print("\n" + table.to_text(precision=3))

    batched = table.get("batched", "fwd/tok")
    sequential = table.get("sequential", "fwd/tok")
    # The fused round amortises one forward over the running set: at batch
    # size >= 4 it must issue at least 2x fewer forwards per token.
    assert table.get("batched", "batch occ") >= 2.0
    assert sequential >= 1.0 - 1e-9
    assert sequential / batched >= 2.0
    # Both engines decoded the same token stream (parity suite asserts the
    # ids; the totals must agree here too).
    assert table.get("batched", "tokens") == table.get("sequential", "tokens")


def test_fig5_speculative(benchmark, results_dir):
    table = benchmark.pedantic(speculative_decode_table, rounds=1, iterations=1)
    save_table(results_dir, "fig5_speculative", table)
    print("\n" + table.to_text(precision=3))

    speculative = table.get("speculative", "fwd/tok")
    baseline = table.get("baseline", "fwd/tok")
    # The acceptance bar: on a repetitive/self-similar workload the verify
    # round must amortise >= 1.5x fewer target-model forwards per generated
    # token on top of the batched baseline (the table builder already
    # asserted the outputs bit-identical).
    assert baseline / speculative >= 1.5
    # Drafting actually happened and mostly survived verification.
    assert table.get("speculative", "drafted") > 0
    assert table.get("speculative", "accept %") >= 50.0
    assert table.get("baseline", "drafted") == 0.0
    # Both engines decoded the same number of tokens in fewer engine steps.
    assert table.get("speculative", "tokens") == table.get("baseline", "tokens")
    assert table.get("speculative", "steps") < table.get("baseline", "steps")

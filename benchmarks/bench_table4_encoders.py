"""Table IV: chunk/query encoder comparison on Llama2-7B over four datasets."""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_n_samples, save_table
from repro.evaluation.ablation import encoder_comparison

N_SAMPLES = bench_n_samples(2)
DATASETS = ("qasper", "samsum", "triviaqa", "repobench-p")


def _run_table4():
    return encoder_comparison(
        datasets=DATASETS,
        model_name="llama2-7b",
        n_samples=N_SAMPLES,
        max_new_tokens=48,
    )


def test_table4_encoder_comparison(benchmark, results_dir):
    table = benchmark.pedantic(_run_table4, rounds=1, iterations=1)
    save_table(results_dir, "table4_encoders", table)
    print("\n" + table.to_text(precision=2))

    def row_mean(row):
        return table.row_average(row)

    contriever = row_mean("Facebook-Contriever")
    llm_embedder = row_mean("LLM Embedder")
    ada = row_mean("ADA-002")
    bm25 = row_mean("BM25")
    # Paper shape: Contriever is the best encoder and BM25 the worst; the
    # dense encoders all beat the purely lexical scorer.
    assert contriever >= llm_embedder - 2.0
    assert contriever >= ada - 2.0
    assert contriever > bm25
    assert llm_embedder > bm25
    assert ada > bm25

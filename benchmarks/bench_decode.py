"""Decode hot-path benchmark: tokens/s, step-time percentiles, phase profile.

Serves the fig5-style concurrent request mix (8 requests, four cache
backends, ``max_running=4``) through the fused batched engine with a
:class:`~repro.profiling.StepProfiler` attached and reports the numbers the
optimisation pass is judged by: decode tokens per second of stepped wall
time, step-time p50/p95, and the per-phase breakdown (schedule / gather /
dequant / project / attend / mlp / logits / verify / bookkeeping).

Every run appends one sample to ``benchmarks/results/BENCH_decode.json`` —
the perf-trajectory artifact whose series shows how decode throughput moves
across commits.  Samples carry a ``label``: the committed series starts
with the pre-optimisation ``baseline`` sample, followed by ``default``
(bit-identical hot path) and ``fast_math`` (opt-in fused GEMMs) samples
from the optimised tree.

Environment knobs:

- ``REPRO_BENCH_DECODE_REQUESTS``: request count (default 8).
- ``REPRO_BENCH_DECODE_TOKENS``: max new tokens per request (default 32).
- ``REPRO_BENCH_DECODE_REPEATS``: serve the mix this many times and record
  the fastest run (default 3).  Best-of-k is the ``timeit`` methodology:
  CPU frequency scaling swings single-run wall time by tens of percent,
  and the minimum is the observation least polluted by it.
- ``REPRO_BENCH_DECODE_LABEL``: label recorded on the appended sample
  (default ``default``).
- ``REPRO_BENCH_GUARD``: when ``1``, compare the fresh default-mode
  tokens/s against the last committed sample with the same label — warn
  on a >10% drop, fail the test on a >25% drop.
"""

from __future__ import annotations

import os

from benchmarks._guard import (
    append_sample,
    guard_enabled,
    guard_metric,
    load_series,
)
from benchmarks.conftest import RESULTS_DIR
from repro.core.config import CocktailConfig
from repro.datasets.generator import SampleGenerator
from repro.evaluation.efficiency import SERVING_SAMPLE_SPEC
from repro.evaluation.setup import build_model, build_tokenizer, shared_vocabulary
from repro.profiling import StepProfiler
from repro.serving.engine import InferenceEngine
from repro.serving.request import GenerationRequest

N_REQUESTS = int(os.environ.get("REPRO_BENCH_DECODE_REQUESTS", 8))
N_TOKENS = int(os.environ.get("REPRO_BENCH_DECODE_TOKENS", 32))
N_REPEATS = int(os.environ.get("REPRO_BENCH_DECODE_REPEATS", 3))
METHODS = ("dense", "cocktail", "fp16", "atom")
MODEL_NAME = "llama2-7b"
MAX_RUNNING = 4

TRAJECTORY = "BENCH_decode.json"


def _run_decode(*, fast_math: bool = False, seed: int = 0) -> dict:
    """Serve the request mix ``N_REPEATS`` times; return the fastest run."""
    best: dict | None = None
    for _ in range(max(1, N_REPEATS)):
        metrics = _serve_once(fast_math=fast_math, seed=seed)
        if best is None or metrics["tokens_per_second"] > best["tokens_per_second"]:
            best = metrics
    best["repeats"] = max(1, N_REPEATS)
    return best


def _serve_once(*, fast_math: bool = False, seed: int = 0) -> dict:
    """Serve the request mix once; return throughput + phase metrics."""
    vocab = shared_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model(MODEL_NAME, tokenizer, seed=seed)
    samples = SampleGenerator(vocab, SERVING_SAMPLE_SPEC, seed=seed).generate_many(
        N_REQUESTS
    )
    engine = InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        seed=seed,
        max_running=MAX_RUNNING,
        prefix_caching=False,  # cold serve: the clock measures the hot path
        fast_math=fast_math,
    )
    profiler = StepProfiler(engine)
    with profiler:
        results = engine.run_batch(
            [
                GenerationRequest(
                    sample.context_words,
                    sample.query_words,
                    max_new_tokens=N_TOKENS,
                    backend=METHODS[i % len(METHODS)],
                    # Decode through special tokens so every request emits
                    # the full budget — the clock wants steady-state decode,
                    # not the workload's early-stop behaviour.
                    stop_on_special=False,
                )
                for i, sample in enumerate(samples)
            ]
        )
    stats = engine.exec_stats
    total = profiler.total_seconds
    metrics = {
        "n_requests": N_REQUESTS,
        "max_new_tokens": N_TOKENS,
        "fast_math": fast_math,
        "n_decode_tokens": stats.n_decode_tokens,
        "n_steps": profiler.n_steps,
        "tokens_per_second": stats.n_decode_tokens / total if total else 0.0,
        "step_ms_p50": profiler.step_percentile(0.50) * 1e3,
        "step_ms_p95": profiler.step_percentile(0.95) * 1e3,
        "forwards_per_token": stats.forwards_per_token,
        "mean_batch_occupancy": stats.mean_batch_occupancy,
        "phase_seconds": dict(profiler.phase_times),
        "phase_fraction": profiler.phase_breakdown(),
    }
    metrics["_profile_table"] = profiler.profile_table()
    metrics["_greedy_tokens"] = [r.token_ids for r in results]
    return metrics


def test_bench_decode(results_dir):
    label = os.environ.get("REPRO_BENCH_DECODE_LABEL", "default")
    prior = load_series(RESULTS_DIR / TRAJECTORY)
    metrics = _run_decode(fast_math=False)

    print("\n" + metrics["_profile_table"])
    print(
        f"{label}: {metrics['tokens_per_second']:.0f} tok/s, "
        f"step p50 {metrics['step_ms_p50']:.2f} ms / "
        f"p95 {metrics['step_ms_p95']:.2f} ms, "
        f"{metrics['n_decode_tokens']} tokens in {metrics['n_steps']} steps"
    )

    append_sample(
        RESULTS_DIR / TRAJECTORY, benchmark="decode", label=label, metrics=metrics
    )

    assert metrics["n_decode_tokens"] > 0
    assert metrics["tokens_per_second"] > 0
    assert metrics["mean_batch_occupancy"] > 1.5
    # The exclusive span accounting covers the whole stepped wall time, so
    # the recorded phases must add back up to it (bookkeeping absorbs the
    # rest) and the named compute phases must actually have fired.
    phase_total = sum(metrics["phase_seconds"].values())
    step_total = metrics["n_decode_tokens"] / metrics["tokens_per_second"]
    assert abs(phase_total - step_total) < 0.05 * step_total + 1e-6
    for phase in ("schedule", "bookkeeping"):
        assert metrics["phase_seconds"].get(phase, 0.0) > 0.0

    if guard_enabled():
        guard_metric(
            prior,
            label=label,
            metric="tokens_per_second",
            fresh=metrics["tokens_per_second"],
            what="decode tokens/s",
        )


def test_bench_decode_fast_math(results_dir):
    """Opt-in fused-GEMM mode: same tokens as default, recorded separately."""
    default = _run_decode(fast_math=False)
    fused = _run_decode(fast_math=True)

    print(
        f"\nfast_math: {fused['tokens_per_second']:.0f} tok/s "
        f"(default {default['tokens_per_second']:.0f}), "
        f"step p50 {fused['step_ms_p50']:.2f} ms"
    )
    append_sample(
        RESULTS_DIR / TRAJECTORY, benchmark="decode", label="fast_math", metrics=fused
    )

    # fast_math trades bit-identity of the logits for stacked GEMMs but must
    # keep the greedy decode itself unchanged on the benchmark workload.
    assert fused["_greedy_tokens"] == default["_greedy_tokens"]
    assert fused["n_decode_tokens"] == default["n_decode_tokens"]

"""Figure 6: throughput versus batch size, including OOM cut-offs.

The paper's observations: Cocktail starts below the uniform-quantization
methods at small batch sizes (the chunk-level search limits throughput),
overtakes them as the batch grows, always exceeds KVQuant, and every
quantized method sustains larger batches than FP16 before running out of
memory.

The analytic curves are complemented by a measured run: a small mixed
batch is actually served through the continuous-batching
:class:`~repro.serving.engine.InferenceEngine` and its per-method
queue/TTFT/TPOT stats are persisted alongside the Figure-6 table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import save_table
from repro.evaluation.efficiency import serving_stats_table, throughput_table
from repro.evaluation.setup import DEFAULT_METHODS, method_display_name

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128, 200, 300, 400)


def _run_fig6():
    return throughput_table("llama2-7b", DEFAULT_METHODS, BATCH_SIZES)


def test_fig6_throughput(benchmark, results_dir):
    table = benchmark.pedantic(_run_fig6, rounds=1, iterations=1)
    save_table(results_dir, "fig6_throughput", table)
    print("\n" + table.to_text(precision=1))

    # Small-batch regime: the search latency puts Cocktail below Atom/KIVI.
    assert table.get("Cocktail", "1") < table.get("Atom", "1")
    # Large-batch regime (before OOM): Cocktail overtakes the uniform methods.
    crossover_batches = [b for b in ("64", "128", "200") if table.get("Cocktail", b) is not None]
    assert any(
        table.get("Cocktail", b) > table.get("Atom", b)
        for b in crossover_batches
        if table.get("Atom", b) is not None
    )
    # Cocktail is always above KVQuant wherever both fit in memory.
    for batch in BATCH_SIZES:
        cocktail = table.get("Cocktail", str(batch))
        kvquant = table.get("KVQuant", str(batch))
        if cocktail is not None and kvquant is not None:
            assert cocktail > kvquant
    # FP16 runs out of memory before the quantized methods.
    fp16_oom = sum(1 for b in BATCH_SIZES if table.get("FP16", str(b)) is None)
    cocktail_oom = sum(1 for b in BATCH_SIZES if table.get("Cocktail", str(b)) is None)
    assert fp16_oom > cocktail_oom


SERVING_METHODS = ("dense", "blockwise", "fp16", "kivi")


def _run_fig6_serving():
    return serving_stats_table(
        n_requests=8, methods=SERVING_METHODS, max_new_tokens=8, max_running=4
    )


def test_fig6_measured_serving(benchmark, results_dir):
    """Measured counterpart: actually serve a mixed batch through the engine."""
    table = benchmark.pedantic(_run_fig6_serving, rounds=1, iterations=1)
    save_table(results_dir, "fig6_serving_stats", table)
    print("\n" + table.to_text(precision=2))

    for method in SERVING_METHODS:
        row = method_display_name(method)
        # Every submitted request completed and produced tokens.
        assert table.get(row, "requests") == 2.0
        assert table.get(row, "tokens") > 0
        # Timing stats are well-formed: queued before first token.
        assert table.get(row, "ttft ms") >= table.get(row, "queue ms") >= 0.0


PREFIX_METHODS = ("dense", "fp16", "kivi")


def _run_fig6_prefix_reuse():
    return serving_stats_table(
        n_requests=3,
        methods=PREFIX_METHODS,
        max_new_tokens=6,
        max_running=4,
        repeats=2,
    )


def test_fig6_prefix_reuse(benchmark, results_dir):
    """Shared-document traffic: the same batch served twice through one
    engine, measuring the prefix index's hit rate and the prefill bytes
    warm requests adopted instead of re-created."""
    table = benchmark.pedantic(_run_fig6_prefix_reuse, rounds=1, iterations=1)
    save_table(results_dir, "fig6_prefix_reuse", table)
    print("\n" + table.to_text(precision=2))

    for method in PREFIX_METHODS:
        row = method_display_name(method)
        assert table.get(row, "requests") == 2.0
        # The second (warm) pass adopted pages instead of re-packing them.
        assert table.get(row, "hit blocks") > 0
        assert table.get(row, "saved B") > 0

#!/usr/bin/env python
"""Speculative decoding: n-gram drafting + one fused verify forward per step.

Four long-context QA requests are served through a batched
:class:`repro.serving.InferenceEngine` with ``speculative=`` configured:
each engine step a zero-cost n-gram proposer (vLLM-style prompt lookup)
guesses up to ``k`` continuation tokens per sequence from the sequence's
own history, and ONE fused multi-token verify forward checks every guess
against the target model.  Accepted tokens are emitted without costing a
forward of their own; rejected tails are rolled back from the paged KV
cache as if never computed.  Greedy verification is exact, so the decoded
streams are bit-identical to plain decoding — the example asserts it by
replaying the identical workload on a non-speculative engine.

The step loop prints each step's drafted/accepted outcome; the closing
summary shows the measured forwards-per-token gap and acceptance rate.

Run with:  PYTHONPATH=src python examples/serving_speculative.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import GenerationRequest, InferenceEngine, SpeculativeConfig

#: Fused-capable backends only: blockwise and the fitted-codebook baselines
#: would transparently serve on their plain path instead of speculating.
BACKENDS = ("dense", "cocktail", "fp16", "atom")


def build_engine(model, tokenizer, vocab, *, speculative) -> InferenceEngine:
    return InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        max_running=4,
        speculative=speculative,
    )


def make_requests(samples):
    return [
        GenerationRequest(
            sample.context_words,
            sample.query_words,
            max_new_tokens=32,
            backend=BACKENDS[i % len(BACKENDS)],
            # Decode through the stop tokens: greedy generation settles into
            # short cycles — exactly the self-similar text prompt-lookup
            # drafting accepts at high rates.
            stop_on_special=False,
        )
        for i, sample in enumerate(samples)
    ]


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)

    config = SpeculativeConfig(proposer="ngram", k=6, max_ngram=3)
    engine = build_engine(model, tokenizer, vocab, speculative=config)
    rids = [engine.submit(request) for request in make_requests(samples)]
    print(f"submitted {len(rids)} requests over backends {BACKENDS}")
    print(f"speculative config: {config}\n")

    step = 0
    while engine.has_pending:
        step += 1
        stats = engine.exec_stats
        drafted, accepted = stats.n_drafted_tokens, stats.n_accepted_tokens
        forwards, tokens = stats.n_forward_calls, stats.n_decode_tokens
        events = engine.step()
        stats = engine.exec_stats
        emitted = sum(1 for e in events if e.token_id is not None)
        done = [e.request_id for e in events if e.is_last]
        print(
            f"step {step:>3} | running {engine.n_running} "
            f"| {stats.n_forward_calls - forwards} forward(s) -> {emitted} tokens "
            f"| drafted {stats.n_drafted_tokens - drafted:>2} "
            f"accepted {stats.n_accepted_tokens - accepted:>2}"
            + (f" | done: {', '.join(done)}" if done else "")
        )

    spec_stats = engine.exec_stats
    results = {rid: engine.result(rid) for rid in rids}
    for rid in rids:
        stats = results[rid].stats
        print(
            f"  {rid} [{results[rid].backend:>8}]: {stats.n_generated} tokens, "
            f"drafted {stats.drafted_tokens}, accepted {stats.accepted_tokens} "
            f"({100 * stats.acceptance_rate:.0f}%)"
        )

    # Replay the identical workload without speculation: bit-identical.
    reference = build_engine(model, tokenizer, vocab, speculative=None)
    reference_results = reference.run_batch(make_requests(samples))
    assert [results[rid].token_ids for rid in rids] == [
        r.token_ids for r in reference_results
    ], "speculative and plain greedy decodes must be bit-identical"

    print("\nmeasured execution profile (identical outputs, same requests):")
    print(
        f"  speculative : {spec_stats.forwards_per_token:.3f} forwards/token, "
        f"acceptance rate {100 * spec_stats.acceptance_rate:.1f}% "
        f"({spec_stats.n_accepted_tokens}/{spec_stats.n_drafted_tokens} drafts)"
    )
    print(
        f"  baseline    : {reference.exec_stats.forwards_per_token:.3f} "
        f"forwards/token (batched, no drafting)"
    )
    speedup = (
        reference.exec_stats.forwards_per_token / spec_stats.forwards_per_token
    )
    print(f"  -> {speedup:.1f}x fewer target-model forwards per generated token")


if __name__ == "__main__":
    main()

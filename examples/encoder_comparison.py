#!/usr/bin/env python
"""Encoder study (Table IV): which retriever should drive the chunk search?

Runs Cocktail with four different chunk/query encoders (ADA-002, BM25,
LLM-Embedder, Facebook-Contriever) on a few datasets and reports the
resulting task accuracy, reproducing the paper's observation that a strong
semantic encoder matters — purely lexical BM25 mis-ranks paraphrased queries
and loses accuracy.

Run with:  python examples/encoder_comparison.py
"""

from __future__ import annotations

from repro.evaluation.ablation import encoder_comparison


def main() -> None:
    table = encoder_comparison(
        datasets=("qasper", "samsum", "triviaqa"),
        n_samples=3,
        max_new_tokens=48,
    )
    print(table.to_text(precision=2))
    print()
    print("Expected shape (paper Table IV): Facebook-Contriever performs best,")
    print("the dense encoders beat BM25, and BM25 loses the most accuracy.")


if __name__ == "__main__":
    main()

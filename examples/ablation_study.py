#!/usr/bin/env python
"""Ablation study: chunk size, alpha/beta thresholds and the two modules.

Regenerates the paper's analysis section on a reduced grid:

* Table III — the impact of the chunk size on QMSum accuracy,
* Figure 7  — the impact of the alpha/beta threshold hyper-parameters,
* Table V   — removing module I (chunk-level quantization search) or module
  II (chunk-level KV cache computation).

Run with:  python examples/ablation_study.py
"""

from __future__ import annotations

from repro.evaluation.ablation import alpha_beta_sweep, chunk_size_sweep, module_ablation


def main() -> None:
    print(chunk_size_sweep((16, 32, 128, 256), n_samples=3).to_text(precision=2))
    print()
    print(alpha_beta_sweep((0.2, 0.6, 0.9), (0.05, 0.2, 0.5), n_samples=2).to_text(precision=2))
    print()
    print(module_ablation(n_samples=3).to_text(precision=2))
    print()
    print("Expected shapes: accuracy is stable for chunk sizes up to 32 and drops")
    print("for coarser chunks; larger alpha hurts accuracy while larger beta helps")
    print("then saturates; dropping module I hurts accuracy, dropping module II")
    print("hurts memory and latency.")


if __name__ == "__main__":
    main()

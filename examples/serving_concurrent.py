#!/usr/bin/env python
"""Serve mixed Cocktail / KIVI / FP16 requests through one engine.

Eight long-context QA requests using four different decode backends are
submitted to a single :class:`repro.serving.InferenceEngine` and served via
continuous batching: the engine admits requests FIFO, decodes every
in-flight sequence one token per step (round-robin) and streams
:class:`TokenEvent` objects as they are produced.  At the end the
per-request serving stats — queue time, time to first token (TTFT) and
time per output token (TPOT) — are printed.

Run with:  PYTHONPATH=src python examples/serving_concurrent.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import GenerationRequest, InferenceEngine

#: Backends cycled over the requests: Cocktail twice (both execution paths),
#: then two of the paper's baselines — all through the same registry.
BACKENDS = ("dense", "blockwise", "kivi", "fp16")


def fmt_ms(seconds: float | None) -> str:
    """Milliseconds, or n/a for stats a zero-token request never sets."""
    return "n/a" if seconds is None else f"{seconds * 1e3:.2f}"


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    engine = InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        max_running=4,  # at most 4 sequences decode concurrently
    )

    samples = build_dataset("qasper", 8, vocab=vocab, seed=7)
    requests = [
        GenerationRequest(
            sample.context_words,
            sample.query_words,
            max_new_tokens=24,
            backend=BACKENDS[i % len(BACKENDS)],
        )
        for i, sample in enumerate(samples)
    ]
    rids = [engine.submit(request) for request in requests]
    print(f"submitted {len(rids)} requests over backends {BACKENDS}")
    print(f"scheduler: max_running={engine.scheduler.max_running} (FIFO admission)\n")

    step = 0
    while engine.has_pending:
        step += 1
        events = engine.step()
        tokens = [f"{e.request_id}+{e.text}" for e in events if e.token_id is not None]
        done = [f"{e.request_id}!{e.stopped_by}" for e in events if e.is_last]
        line = "  ".join(tokens + done)
        print(
            f"step {step:>3} | running {engine.n_running} "
            f"waiting {engine.n_waiting} | {line}"
        )

    print("\nper-request serving stats (simulation speed):")
    header = (
        f"{'request':>8} {'backend':>10} {'tokens':>6} {'queue ms':>9} "
        f"{'ttft ms':>8} {'tpot ms':>8} {'ctx KiB':>8}  {'stopped_by':>10}  answer"
    )
    print(header)
    for rid, request in zip(rids, requests):
        result = engine.result(rid)
        stats = result.stats
        kv = result.details.get("kv_bytes", {})
        ctx_kib = f"{kv['context_bytes'] / 1024:.1f}" if kv else "n/a"
        print(
            f"{rid:>8} {result.backend:>10} {len(result.token_ids):>6} "
            f"{fmt_ms(stats.queue_seconds):>9} {fmt_ms(stats.ttft_seconds):>8} "
            f"{fmt_ms(stats.tpot_seconds):>8} {ctx_kib:>8}  {result.stopped_by:>10}  "
            f"{result.answer_text[:42]}"
        )
    index = engine.prefix_cache
    print(
        f"\nshared KV pool: peak {engine.pool.peak_allocated_blocks} pages "
        f"({engine.pool.peak_bytes / 1024:.1f} KiB measured); every request's "
        f"private pages were returned, {index.n_blocks} packed context pages "
        "stay retained by the prefix index for future repeated-context traffic"
    )
    print(
        f"prefix index hit-rate: {index.stats.hit_rate:.0%} "
        f"({index.stats.n_hit_blocks} page hits — distinct documents here; "
        "see examples/serving_shared_prefix.py for shared-document reuse)"
    )


if __name__ == "__main__":
    main()

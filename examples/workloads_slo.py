#!/usr/bin/env python
"""Generate a seeded workload, replay it self-checked, print the SLO card.

The workload harness in one script: a :class:`WorkloadGenerator` builds
two deterministic traces from a seed (a Poisson steady-state blend and a
shared-system-prompt agent fleet), a sequential replay on a clean engine
stamps every request with its oracle (expected tokens, stop reason and a
structural prefix-cache hit floor), and an :class:`EngineDriver` replays
each trace concurrently under a virtual clock — asserting bit-identical
outputs and the hit floors on the way — before
:func:`~repro.workloads.build_report` scores the run against per-class
TTFT/TPOT deadlines measured in deterministic engine-step units.

Run with:  PYTHONPATH=src python examples/workloads_slo.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import InferenceEngine
from repro.workloads import (
    EngineDriver,
    VirtualClock,
    WorkloadGenerator,
    attach_oracles,
    build_report,
    check_oracles,
)

SEED = 0
SCENARIOS = ("poisson", "shared_prefix")


def fresh_engine(model, tokenizer, vocab, **kwargs) -> InferenceEngine:
    return InferenceEngine(
        model, tokenizer, CocktailConfig(), lexicon=vocab.lexicon, **kwargs
    )


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 4, vocab=vocab, seed=7)
    generator = WorkloadGenerator(samples, block_size=16)

    for name in SCENARIOS:
        trace = generator.generate(name, SEED)
        print(f"\n=== scenario {name!r} · seed {SEED} · {len(trace)} requests ===")

        # Sequential replay on a quiet engine: the oracle for ANY schedule.
        attach_oracles(trace, fresh_engine(model, tokenizer, vocab))
        total_floor = trace.metadata["hit_floor_total"]
        print(f"oracles stamped; guaranteed prefix-hit floor: {total_floor} pages")

        # Concurrent replay under a virtual clock (1 unit == 1 engine step).
        clock = VirtualClock()
        engine = fresh_engine(
            model, tokenizer, vocab, max_running=4, clock=clock,
            **trace.engine_hints,
        )
        run = EngineDriver(engine, clock=clock).run(trace)
        check_oracles(run)  # bit-identical tokens + hit floors, or raise
        print(f"replayed in {run.n_steps} engine steps: "
              f"{run.n_completed} completed, {run.n_cancelled} cancelled — "
              "all outputs bit-identical to the sequential replay")

        report = build_report(run)
        fmt = lambda v: f"{v:.2f}" if v is not None else "-"  # noqa: E731
        for cls in report.classes.values():
            print(f"  [{cls.slo_class}] goodput {cls.goodput:.2f} "
                  f"({cls.n_within_slo}/{cls.n_offered} within deadline), "
                  f"TTFT p50/p95 = {fmt(cls.ttft_p50)}/{fmt(cls.ttft_p95)} steps, "
                  f"TPOT p50 = {fmt(cls.tpot_p50)}")
        print(f"  prefix-cache adoption: {report.cached_tokens} context tokens "
              f"served from shared pages")

        assert report.goodput > 0
    print("\nworkload SLO harness example OK")


if __name__ == "__main__":
    main()

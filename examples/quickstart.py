#!/usr/bin/env python
"""Quickstart: serve one long-context Cocktail request through the engine.

The example builds the simulated Llama2-7B retrieval model, generates a
synthetic single-document-QA request (Qasper-style) and serves it through
the :class:`repro.serving.InferenceEngine` with the ``"blockwise"`` backend
(chunk-level quantization search, chunk reordering, mixed-precision
quantization, Algorithm-1 blockwise decode), streaming the answer token by
token.  The FP16 reference runs through the very same engine — the decode
backend is just another registry name.

Run with:  PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.metrics.registry import compute_metric
from repro.quant.dtypes import BitWidth
from repro.serving import GenerationRequest, InferenceEngine


def fmt_ms(seconds: float | None) -> str:
    """Milliseconds, or n/a for stats a zero-token request never sets."""
    return "n/a" if seconds is None else f"{seconds * 1e3:.1f} ms"


def main() -> None:
    # 1. Build the substrate: vocabulary, tokenizer and the simulation model.
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)

    # 2. Generate one synthetic long-context QA request.
    sample = build_dataset("qasper", 1, vocab=vocab, seed=42)[0]
    print(f"context length : {sample.n_context_tokens} tokens")
    print(f"query          : {sample.query_text}")
    print(f"gold answer    : {sample.answer_text}")

    # 3. Build the serving engine with the paper's default hyper-parameters
    #    (chunk size 32, alpha 0.6, beta 0.1, Contriever encoder) and stream
    #    the Cocktail answer through the blockwise (Algorithm 1) backend.
    engine = InferenceEngine(model, tokenizer, CocktailConfig(), lexicon=vocab.lexicon)
    request = GenerationRequest(
        sample.context_words, sample.query_words, max_new_tokens=64, backend="blockwise"
    )
    print("\n--- streaming decode ---")
    for event in engine.stream(request):
        if event.token_id is not None:
            print(f"  token {event.index:>2} : {event.text}")
    result = engine.result(request.request_id)

    chunk_bits = list(result.plan.details.get("chunk_bits", []))
    counts = {bits: chunk_bits.count(bits) for bits in (BitWidth.INT2, BitWidth.INT4, BitWidth.FP16)}
    print("\n--- chunk-level quantization search ---")
    print(f"chunks          : {len(chunk_bits)}")
    print(f"INT2 chunks     : {counts[BitWidth.INT2]}")
    print(f"INT4 chunks     : {counts[BitWidth.INT4]}")
    print(f"FP16 chunks     : {counts[BitWidth.FP16]}")
    print(f"search latency  : {result.plan.search_seconds * 1e3:.1f} ms (modeled)")

    compression = result.details["chunked_caches"][0].compression_ratio()
    print("\n--- chunk-level KV cache computation ---")
    print(f"context KV compression vs FP16 : {compression:.2f}x")
    print(f"TTFT (measured, sim speed)     : {fmt_ms(result.stats.ttft_seconds)}")
    print(f"TPOT (measured, sim speed)     : {fmt_ms(result.stats.tpot_seconds)}")

    print("\n--- answers ---")
    cocktail_score = compute_metric(sample.metric, result.answer_text, sample.answer_text)
    print(f"Cocktail answer : {result.answer_text}")
    print(f"Cocktail F1     : {cocktail_score:.1f}")

    # 4. FP16 reference (no quantization at all) — same engine, different backend.
    fp16 = engine.run(
        GenerationRequest(
            sample.context_words, sample.query_words, max_new_tokens=64, backend="fp16"
        )
    )
    fp16_score = compute_metric(sample.metric, fp16.answer_text, sample.answer_text)
    print(f"FP16 answer     : {fp16.answer_text}")
    print(f"FP16 F1         : {fp16_score:.1f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: run Cocktail end-to-end on one long-context request.

The example builds the simulated Llama2-7B retrieval model, generates a
synthetic single-document-QA request (Qasper-style), runs the full Cocktail
pipeline (chunk-level quantization search, chunk reordering, mixed-precision
quantization, blockwise decode) and compares the answer against the
full-precision FP16 baseline.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.core.pipeline import CocktailPipeline
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.metrics.registry import compute_metric
from repro.quant.dtypes import BitWidth


def main() -> None:
    # 1. Build the substrate: vocabulary, tokenizer and the simulation model.
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)

    # 2. Generate one synthetic long-context QA request.
    sample = build_dataset("qasper", 1, vocab=vocab, seed=42)[0]
    print(f"context length : {sample.n_context_tokens} tokens")
    print(f"query          : {sample.query_text}")
    print(f"gold answer    : {sample.answer_text}")

    # 3. Run Cocktail with the paper's default hyper-parameters
    #    (chunk size 32, alpha 0.6, beta 0.1, Contriever encoder).
    config = CocktailConfig()
    pipeline = CocktailPipeline(model, tokenizer, config, lexicon=vocab.lexicon)
    result = pipeline.run(
        sample.context_words, sample.query_words, max_new_tokens=64, mode="blockwise"
    )

    chunk_bits = result.chunk_bits
    counts = {bits: chunk_bits.count(bits) for bits in (BitWidth.INT2, BitWidth.INT4, BitWidth.FP16)}
    print("\n--- chunk-level quantization search ---")
    print(f"chunks          : {len(chunk_bits)}")
    print(f"INT2 chunks     : {counts[BitWidth.INT2]}")
    print(f"INT4 chunks     : {counts[BitWidth.INT4]}")
    print(f"FP16 chunks     : {counts[BitWidth.FP16]}")
    print(f"search latency  : {result.plan.search_seconds * 1e3:.1f} ms (modeled)")

    compression = result.chunked_caches[0].compression_ratio()
    print("\n--- chunk-level KV cache computation ---")
    print(f"context KV compression vs FP16 : {compression:.2f}x")

    print("\n--- answers ---")
    cocktail_score = compute_metric(sample.metric, result.answer_text, sample.answer_text)
    print(f"Cocktail answer : {result.answer_text}")
    print(f"Cocktail F1     : {cocktail_score:.1f}")

    # 4. FP16 reference (no quantization at all).
    prompt = pipeline.prompt_ids(sample.context_words, sample.query_words)
    fp16 = model.generate(
        prompt, max_new_tokens=64, stop_ids=(tokenizer.eos_id, tokenizer.sep_id)
    )
    fp16_answer = tokenizer.decode(fp16.token_ids)
    fp16_score = compute_metric(sample.metric, fp16_answer, sample.answer_text)
    print(f"FP16 answer     : {fp16_answer}")
    print(f"FP16 F1         : {fp16_score:.1f}")


if __name__ == "__main__":
    main()

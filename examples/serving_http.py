#!/usr/bin/env python
"""Serve HTTP/SSE traffic from concurrent asyncio clients over one engine.

The full front-door stack in one script: an :class:`InferenceEngine`
hosted by a :class:`ServerCore` step loop, exposed over a stdlib
HTTP/1.1 + SSE :class:`ServingServer`, authenticated against a two-tenant
:class:`TenantRegistry` with real quotas.  Eight streaming clients hit
``POST /v1/completions`` concurrently — one of them drops its connection
mid-stream (the server cancels its request and the pool pages drain), and
one asks for more tokens than its tenant's budget allows (structured
HTTP 429).  At the end the per-tenant usage and the server's ``/v1/stats``
counters are printed.

Run with:  PYTHONPATH=src python examples/serving_http.py
"""

from __future__ import annotations

import asyncio

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import InferenceEngine
from repro.serving.server import ServerCore, ServingServer, TenantRegistry, TenantSpec
from repro.serving.server.client import CompletionStream, request_json

#: Client mix: (tenant key, max_tokens, disconnects mid-stream?).
CLIENTS = [
    ("k-research", 24, False),
    ("k-product", 24, False),
    ("k-research", 24, True),  # drops its connection after 6 tokens
    ("k-product", 24, False),
    ("k-research", 24, False),
    ("k-product", 512, False),  # over the product tenant's per-request cap
    ("k-research", 24, False),
    ("k-product", 24, False),
]


async def run_client(host: str, port: int, name: str, sample, spec) -> dict:
    """Stream one completion; returns a small report line for the summary."""
    key, max_tokens, disconnect = spec
    payload = {
        "context": list(sample.context_words[:56]),
        "query": list(sample.query_words),
        "max_tokens": max_tokens,
        "backend": "dense",
    }
    stream = await CompletionStream.open(host, port, payload, api_key=key)
    if stream.status != 200:
        error = stream.error["error"]
        await stream.close()
        return {
            "client": name,
            "tenant": key.removeprefix("k-"),
            "outcome": f"HTTP {stream.status} ({error['code']}): {error['message']}",
        }
    n_tokens, finish = 0, None
    async for chunk in stream.chunks():
        choice = chunk["choices"][0]
        if choice["finish_reason"] is not None:
            finish = choice["finish_reason"]
            break
        n_tokens += 1
        if disconnect and n_tokens >= 6:
            await stream.abort()  # hang up mid-stream, like a closed tab
            return {
                "client": name,
                "tenant": key.removeprefix("k-"),
                "outcome": f"disconnected after {n_tokens} tokens",
            }
    await stream.close()
    return {
        "client": name,
        "tenant": key.removeprefix("k-"),
        "outcome": f"{n_tokens} tokens, finish_reason={finish}",
    }


async def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    engine = InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        max_running=4,
    )
    tenants = TenantRegistry(
        [
            TenantSpec("research", api_key="k-research", max_concurrent=8),
            TenantSpec("product", api_key="k-product", max_new_tokens=64),
        ]
    )
    core = ServerCore(engine, tenants=tenants)
    samples = build_dataset("qasper", len(CLIENTS), vocab=vocab, seed=7)

    async with ServingServer(core) as server:
        print(f"serving on http://{server.host}:{server.port} "
              f"(tenants: {', '.join(tenants.tenant_names)})\n")
        reports = await asyncio.gather(
            *(
                run_client(server.host, server.port, f"client-{i}", sample, spec)
                for i, (sample, spec) in enumerate(zip(samples, CLIENTS))
            )
        )
        for report in reports:
            print(f"{report['client']:>9} [{report['tenant']:>8}]  "
                  f"{report['outcome']}")

        # Give the engine thread a beat to retire the disconnected request.
        while core.n_active:
            await asyncio.sleep(0.01)
        stats = (await request_json(server.host, server.port, "GET", "/v1/stats")).payload

    server_stats = stats["server"]
    print(f"\nserver: {server_stats['n_submitted']} submitted, "
          f"{server_stats['n_finished']} finished, "
          f"{server_stats['n_cancelled']} cancelled "
          f"(http saw {stats['http']['n_disconnect_cancels']} disconnect, "
          f"{stats['http']['n_client_errors']} client errors)")
    print(f"engine: {stats['engine']['n_steps']} steps, "
          f"{stats['engine']['n_decode_tokens']} decode tokens, "
          f"batch occupancy {stats['engine']['mean_batch_occupancy']:.2f}")
    print(f"pool:   {stats['pool']['n_allocated']} pages live "
          f"({stats['pool']['allocated_bytes'] / 1024:.1f} KiB), "
          f"peak {stats['pool']['peak_allocated_blocks']} pages; "
          f"prefix index retains {stats['prefix_cache']['n_blocks']}")
    print("\nper-tenant usage:")
    for name, usage in stats["tenants"].items():
        print(f"  {name:>9}: {usage['n_completed']} completed, "
              f"{usage['n_cancelled']} cancelled, {usage['n_rejected']} rejected, "
              f"{usage['prompt_tokens']} prompt + "
              f"{usage['completion_tokens']} completion tokens")

    # The disconnect and the 429 both happened, and nothing leaked.
    assert server_stats["n_cancelled"] == 1
    assert any(u["n_rejected"] == 1 for u in stats["tenants"].values())
    assert stats["pool"]["n_allocated"] == stats["prefix_cache"]["n_blocks"]


if __name__ == "__main__":
    asyncio.run(main())

#!/usr/bin/env python
"""Data-parallel serving: a 2-worker sharded pool with cache-aware routing.

One :class:`~repro.serving.ShardedEngine` fronts two private engine
workers.  The traffic is a mixed fleet: two *agent teams*, each sharing
one long system document (the classic hot-prefix pattern), plus a stream
of independent cold requests.  The router places every request by longest
prefix match against a global index of the workers' chained block hashes
— so each team's followers land on the worker that already holds their
document's packed pages — and falls back to least-loaded placement for
the cold traffic.

The script prints per-request placement (worker plus pages adopted from
its cache), the per-worker routing/stats rows a `/v1/stats` dashboard
would show, and the aggregate speedup measured in *engine rounds*: one pool
round steps every busy worker once, so `single-worker steps ÷ pool
rounds` is the data-parallel speedup a lockstep deployment realises.

Run with:  PYTHONPATH=src python examples/serving_sharded.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import GenerationRequest, InferenceEngine, ShardedEngine


def build_traffic(documents, samples):
    """Two shared-document agent teams plus independent cold requests.

    Returns ``(leaders, followers)``: each team's first agent arrives
    first and warms its worker's cache; the rest of the fleet (and the
    cold background traffic) arrives once those pages are resident.
    """
    leaders, followers = [], []
    for t, doc in enumerate(documents):
        context = tuple(doc.context_words[:64])
        for agent in range(4):
            request = GenerationRequest(
                context,
                tuple(doc.query_words) + (f"team{t}", f"agent{agent}"),
                max_new_tokens=8,
                backend="fp16",  # constant bitwidths: pages shared across queries
            )
            (leaders if agent == 0 else followers).append(request)
    for i, sample in enumerate(samples):
        followers.append(GenerationRequest(
            tuple(sample.context_words[: 28 + 2 * i]),
            tuple(sample.query_words),
            max_new_tokens=8,
            backend="cocktail",
        ))
    return leaders, followers


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)

    def factory() -> InferenceEngine:
        return InferenceEngine(
            model,
            tokenizer,
            CocktailConfig(),
            lexicon=vocab.lexicon,
            max_running=4,
        )

    documents = build_dataset("qasper", 2, vocab=vocab, seed=11)
    samples = build_dataset("triviaqa", 4, vocab=vocab, seed=23)
    leaders, followers = build_traffic(documents, samples)
    traffic = leaders + followers

    def run(submit, drain):
        """Leaders first, drain; then the follower wave, drain again."""
        for request in leaders:
            submit(request)
        drain()
        for request in followers:
            submit(request)
        drain()

    # -- single worker: the baseline step count ------------------------------
    single = factory()
    single_steps = 0

    def drain_single():
        nonlocal single_steps
        while single.has_runnable:
            single.step()
            single_steps += 1

    run(single.submit, drain_single)
    single_hits = sum(
        r.stats.cache_hit_blocks for r in single.pop_results().values()
    )

    # -- 2-worker pool: same traffic, routed ---------------------------------
    pool = ShardedEngine(factory, n_workers=2)
    placements = []

    def submit_pool(request):
        rid = pool.submit(request)
        placements.append(
            (rid, pool.owner_of(rid), " ".join(request.query_words[-2:]))
        )

    def drain_pool():
        while pool.has_runnable:
            pool.step()

    run(submit_pool, drain_pool)
    results = pool.pop_results()

    print(f"routed {len(traffic)} requests over {pool.n_workers} workers\n")
    print(f"{'request':>8} {'backend':>9} {'worker':>6} {'hit blk':>7}  query tail")
    for rid, worker_id, tail in placements:
        result = results[rid]
        print(
            f"{rid:>8} {result.backend:>9} {worker_id:>6} "
            f"{result.stats.cache_hit_blocks:>7}  {tail}"
        )

    print(f"\n{'worker':>6} {'routed':>6} {'via prefix':>10} "
          f"{'steps':>6} {'tokens':>7} {'hit-rate':>8}")
    for row in pool.worker_stats_payload():
        print(
            f"{row['worker_id']:>6} {row['n_routed']:>6} "
            f"{row['n_prefix_routed']:>10} {row['n_steps']:>6} "
            f"{row['n_decode_tokens']:>7} {row['prefix_hit_rate']:>8.0%}"
        )

    pool_hits = sum(r.stats.cache_hit_blocks for r in results.values())
    preserved = pool_hits / single_hits if single_hits else 1.0
    print(
        f"\nprefix hits: {pool_hits} pages adopted across the pool vs "
        f"{single_hits} on one worker ({preserved:.0%} preserved by routing)"
    )
    print(
        f"engine rounds: {pool.n_rounds} pool rounds vs {single_steps} "
        f"single-worker steps — {single_steps / pool.n_rounds:.2f}x "
        "data-parallel speedup in lockstep rounds"
    )


if __name__ == "__main__":
    main()

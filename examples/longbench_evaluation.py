#!/usr/bin/env python
"""Mini LongBench evaluation: Table II on a reduced grid.

Compares FP16, Atom, KIVI, KVQuant and Cocktail on a subset of the synthetic
LongBench-style datasets with the simulated Llama2-7B model.  This is the
workload the paper's introduction motivates: long-context question answering
and summarization where only a few context chunks matter for any query.

Run with:  python examples/longbench_evaluation.py [--full]
"""

from __future__ import annotations

import argparse

from repro.evaluation.accuracy import AccuracyRunner
from repro.evaluation.setup import DEFAULT_METHODS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="evaluate all eight datasets and four models (slow on CPU)",
    )
    parser.add_argument("--samples", type=int, default=3, help="samples per dataset")
    args = parser.parse_args()

    if args.full:
        model_names = ["llama2-7b", "llama2-13b", "mistral-7b", "longchat-7b"]
        datasets = None  # all eight
    else:
        model_names = ["llama2-7b"]
        datasets = ["qasper", "qmsum", "trec", "lcc"]

    runner = AccuracyRunner(
        model_names=model_names,
        datasets=datasets,
        methods=DEFAULT_METHODS,
        n_samples=args.samples,
        max_new_tokens=64,
    )
    result = runner.run()
    for model_name in model_names:
        print()
        print(result.table_for_model(model_name).to_text(precision=2))

    print("\nExpected shape (paper Table II): Cocktail achieves the best average")
    print("among the quantized methods and stays close to the FP16 baseline.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Batched decode execution: one fused forward per engine step.

Eight long-context QA requests over four decode backends are served through
one :class:`repro.serving.InferenceEngine`.  On paged engines the batched
round is the default: every running sequence whose backend supports fused
execution advances through **one** ``decode_step_batch`` model invocation
per step (dense / cocktail / the ablation variants all share one fused
group, even mixed in the same batch), while backends carrying per-request
fitted codebooks (KIVI here) transparently keep the sequential
one-forward-per-token path.  A ``max_prefill_tokens_per_step`` budget
additionally meters long prompts across steps (chunked prefill) so
admissions never stall the in-flight decodes.

The step loop below prints the per-step fused batch occupancy; at the end
the same requests are replayed on a sequential engine to show the measured
forward-invocations-per-token gap (outputs are bit-identical either way).

Run with:  PYTHONPATH=src python examples/serving_batched_decode.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import GenerationRequest, InferenceEngine

#: Three fused-capable backends plus KIVI, whose per-request fitted scales
#: keep it on the sequential path — demonstrating the transparent fallback.
BACKENDS = ("dense", "cocktail", "fp16", "kivi")


def build_engine(model, tokenizer, vocab, *, batched: bool) -> InferenceEngine:
    return InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        max_running=4,
        batched_decode=batched,
        max_prefill_tokens_per_step=512,  # chunked prefill: long prompts meter in
    )


def make_requests(samples):
    return [
        GenerationRequest(
            sample.context_words,
            sample.query_words,
            max_new_tokens=24,
            backend=BACKENDS[i % len(BACKENDS)],
        )
        for i, sample in enumerate(samples)
    ]


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 8, vocab=vocab, seed=7)

    engine = build_engine(model, tokenizer, vocab, batched=True)
    rids = [engine.submit(request) for request in make_requests(samples)]
    print(f"submitted {len(rids)} requests over backends {BACKENDS}")
    print(
        "batched round: one fused forward advances the whole batchable set; "
        "kivi falls back to sequential steps\n"
    )

    step = 0
    while engine.has_pending:
        step += 1
        before = engine.exec_stats
        fused_calls = before.n_fused_calls
        fused_seqs = before.n_fused_sequences
        sequential = before.n_sequential_forwards
        events = engine.step()
        stats = engine.exec_stats
        occupancy = stats.n_fused_sequences - fused_seqs
        n_fused = stats.n_fused_calls - fused_calls
        n_seq = stats.n_sequential_forwards - sequential
        tokens = sum(1 for e in events if e.token_id is not None)
        done = [e.request_id for e in events if e.is_last]
        print(
            f"step {step:>3} | running {engine.n_running} "
            f"prefilling {engine.n_prefilling} waiting {engine.n_waiting} "
            f"| fused {n_fused} call(s) x {occupancy} seqs + {n_seq} sequential "
            f"-> {tokens} tokens"
            + (f" | done: {', '.join(done)}" if done else "")
        )

    batched_stats = engine.exec_stats
    results = {rid: engine.result(rid) for rid in rids}

    # Replay the identical workload on a forced-sequential engine.
    reference = build_engine(model, tokenizer, vocab, batched=False)
    reference_results = reference.run_batch(make_requests(samples))
    assert [results[rid].token_ids for rid in rids] == [
        r.token_ids for r in reference_results
    ], "batched and sequential decodes must be bit-identical"

    print("\nmeasured execution profile (identical outputs, same requests):")
    print(
        f"  batched    : {batched_stats.forwards_per_token:.3f} forwards/token, "
        f"mean batch occupancy {batched_stats.mean_batch_occupancy:.2f}, "
        f"{batched_stats.n_prefill_chunks} chunked-prefill passes"
    )
    print(
        f"  sequential : {reference.exec_stats.forwards_per_token:.3f} forwards/token "
        f"({reference.exec_stats.n_sequential_forwards} single-sequence forwards)"
    )
    speedup = (
        reference.exec_stats.forwards_per_token / batched_stats.forwards_per_token
    )
    print(f"  -> {speedup:.1f}x fewer model invocations per generated token")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Efficiency analysis: GPU memory, TPOT and throughput (Figures 4-6).

Derives each method's storage profile from a real simulated QMSum request
(so the Cocktail and KVQuant precision mixes are measured, not assumed) and
feeds it to the analytic A800 cost model to regenerate the paper's
efficiency figures.

Run with:  python examples/memory_latency_analysis.py
"""

from __future__ import annotations

from repro.evaluation.efficiency import (
    memory_table,
    representative_profile,
    throughput_table,
    tpot_table,
)
from repro.evaluation.setup import DEFAULT_METHODS
from repro.quant.dtypes import BitWidth


def main() -> None:
    print("Measuring per-method storage profiles on a simulated QMSum request...")
    for method in DEFAULT_METHODS:
        profile = representative_profile(method)
        fractions = ", ".join(
            f"{bits.name}={frac:.2f}" for bits, frac in sorted(profile.bit_fractions.items())
        )
        print(
            f"  {method:<10} mean bits/elem = {profile.mean_bits:5.2f}  "
            f"layout = {profile.layout.value:<15} ({fractions})"
        )

    print()
    print(memory_table().to_text(precision=2))
    print()
    print(tpot_table().to_text(precision=0))
    print()
    print(throughput_table(batch_sizes=(1, 4, 16, 64, 128, 200, 300, 400)).to_text(precision=1))
    print()
    print("Expected shapes: Cocktail uses the least GPU memory and the lowest TPOT;")
    print("its throughput starts below the uniform methods (chunk-level search cost),")
    print("overtakes them at larger batch sizes, and FP16 hits OOM first.")


if __name__ == "__main__":
    main()

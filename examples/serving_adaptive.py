#!/usr/bin/env python
"""Adaptive control loops: draft windows, prefill budget, SLO scheduling.

A mixed-class batch — interactive chat turns arriving alongside batch and
background summarization jobs — is served by an engine running all three
adaptive controllers from :mod:`repro.serving.adaptive`:

* every sequence's **draft window** adapts to its observed speculation
  acceptance (EWMA): predictable text earns deeper windows, adversarial
  text degrades to plain decoding with periodic one-token probes;
* the **chunked-prefill budget** chases a per-step latency target under a
  cost-aware virtual clock (long prompt chunks make a step expensive, so
  the controller shrinks the budget the moment a step overshoots);
* the **SLO policy** admits interactive work past queued batch jobs and
  picks preemption victims by class and deadline slack.

The step loop prints the live trace of both controllers — per-request
draft windows with their smoothed acceptance, and the prefill budget with
the last measured step cost — so you can watch the windows widen, the
budget settle into its deadband, and the interactive request jump the
queue.  Outputs stay bit-identical to a static engine: the example
asserts it by replaying the same requests without any controller.

Run with:  PYTHONPATH=src python examples/serving_adaptive.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import (
    GenerationRequest,
    InferenceEngine,
    PrefillBudgetController,
    SloPolicy,
    SpeculativeConfig,
)
from repro.workloads import StepCostModel, VirtualClock

#: Per-step latency target the prefill controller chases (virtual units).
TPOT_TARGET = 4.0

#: The virtual clock charges each step for the work it actually did.
COST_MODEL = StepCostModel(base=1.0, prefill_token_cost=0.05, forward_row_cost=0.02)


def build_engine(model, tokenizer, vocab, *, adaptive, clock) -> InferenceEngine:
    kwargs = dict(
        max_running=3,
        clock=clock,
        speculative=SpeculativeConfig(k=6, adaptive=adaptive),
    )
    if adaptive:
        kwargs["prefill_controller"] = PrefillBudgetController(
            target=TPOT_TARGET, min_budget=16, max_budget=256
        )
        kwargs["slo_policy"] = SloPolicy()
    return InferenceEngine(
        model, tokenizer, CocktailConfig(), lexicon=vocab.lexicon, **kwargs
    )


def make_requests(samples):
    """Three interactive turns interleaved with batch/background jobs."""
    classes = ("interactive", "batch", "interactive", "background", "interactive")
    return [
        GenerationRequest(
            sample.context_words,
            sample.query_words,
            max_new_tokens=24,
            backend="dense",
            slo_class=classes[i % len(classes)],
            stop_on_special=False,
        )
        for i, sample in enumerate(samples)
    ]


def work_snapshot(engine) -> tuple[int, int]:
    stats = engine.exec_stats
    rows = stats.n_decode_tokens + stats.n_drafted_tokens - stats.n_accepted_tokens
    return stats.n_prefill_tokens, rows


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    samples = build_dataset("qasper", 5, vocab=vocab, seed=7)
    requests = make_requests(samples)

    clock = VirtualClock()
    engine = build_engine(model, tokenizer, vocab, adaptive=True, clock=clock)
    rids = [engine.submit(request) for request in requests]
    by_rid = {rid: request.slo_class for rid, request in zip(rids, requests)}
    print(f"submitted {len(rids)} requests: "
          + ", ".join(f"{rid}={cls}" for rid, cls in by_rid.items()))
    print(f"prefill target {TPOT_TARGET} virtual units/step, cost model {COST_MODEL}\n")

    step = 0
    while engine.has_pending:
        step += 1
        prefill_before, rows_before = work_snapshot(engine)
        events = engine.step()
        prefill_after, rows_after = work_snapshot(engine)
        clock.advance(
            COST_MODEL.cost(
                prefill_tokens=prefill_after - prefill_before,
                forward_rows=rows_after - rows_before,
            )
        )
        adaptive = engine.adaptive_stats()
        prefill = adaptive["prefill"]
        windows = " ".join(
            f"{rid}:{reading['window']}"
            + (f"({reading['ewma']:.2f})" if reading["ewma"] is not None else "")
            for rid, reading in sorted(adaptive["draft_windows"].items())
        )
        cost = prefill["last_step_cost"]
        cost_text = f"{cost:5.1f}" if cost is not None else "    -"
        done = [e.request_id for e in events if e.is_last]
        print(
            f"step {step:>3} | t={clock.now:7.1f} "
            f"| budget {prefill['budget']:>3} (cost {cost_text}) "
            f"| windows [{windows}]"
            + (f" | done: {', '.join(done)}" if done else "")
        )

    print("\nfinal per-request serving stats:")
    results = {rid: engine.result(rid) for rid in rids}
    for rid in rids:
        stats = results[rid].stats
        print(
            f"  {rid} [{stats.slo_class:>11}]: {stats.n_generated} tokens, "
            f"ttft {stats.ttft_seconds:.1f}, drafted {stats.drafted_tokens}, "
            f"accepted {stats.accepted_tokens}"
        )

    # The controllers only move *when* work happens, never what is decoded:
    # a static engine must produce bit-identical streams.
    static = build_engine(
        model, tokenizer, vocab, adaptive=False, clock=VirtualClock()
    )
    reference = static.run_batch(make_requests(samples))
    assert [results[rid].token_ids for rid in rids] == [
        r.token_ids for r in reference
    ], "adaptive and static decodes must be bit-identical"
    print("\nadaptive outputs verified bit-identical to the static engine")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Shared-document traffic: cross-request KV reuse through the prefix index.

A handful of users query the *same* long document concurrently (the classic
"hot document" serving pattern).  With prefix caching on — the default for
paged engines — the first request per (document, quantization plan) packs
its context pages once; every later request adopts those ref-counted pages
from the engine's radix prefix index instead of allocating, writing and
re-quantizing them.  Decoded outputs are bit-identical to an engine with
caching off; only the storage work changes.

The script serves two waves of requests over two documents and prints the
per-request reuse (`hit blk`, `cached tok`, `saved KiB`) plus the index's
aggregate hit-rate.

Run with:  PYTHONPATH=src python examples/serving_shared_prefix.py
"""

from __future__ import annotations

from repro.core.config import CocktailConfig
from repro.datasets.longbench import build_dataset, build_vocabulary
from repro.evaluation.setup import build_model, build_tokenizer
from repro.serving import GenerationRequest, InferenceEngine

#: Mixed methods on purpose: 'dense' and 'cocktail' share one fingerprint
#: (same token-local numerics), so they warm each other's pages; 'fp16' and
#: 'kivi' each maintain their own page family.
BACKENDS = ("dense", "cocktail", "kivi", "fp16")


def main() -> None:
    vocab = build_vocabulary()
    tokenizer = build_tokenizer(vocab)
    model = build_model("llama2-7b", tokenizer)
    engine = InferenceEngine(
        model,
        tokenizer,
        CocktailConfig(),
        lexicon=vocab.lexicon,
        max_running=4,
    )

    documents = build_dataset("qasper", 2, vocab=vocab, seed=11)
    traffic = [
        doc
        for _wave in range(2)         # the second wave repeats both documents
        for doc in documents
        for _user in range(2)         # two concurrent users per document
    ]
    requests = [
        GenerationRequest(
            doc.context_words,
            doc.query_words,
            max_new_tokens=16,
            backend=BACKENDS[i % len(BACKENDS)],
        )
        for i, doc in enumerate(traffic)
    ]
    results = engine.run_batch(requests, pop=True)

    print(f"served {len(requests)} requests over {len(documents)} shared documents\n")
    header = (
        f"{'request':>8} {'backend':>9} {'hit blk':>7} {'cached tok':>10} "
        f"{'saved KiB':>9}  answer"
    )
    print(header)
    for result in results:
        stats = result.stats
        print(
            f"{result.request_id:>8} {result.backend:>9} "
            f"{stats.cache_hit_blocks:>7} {stats.cached_tokens:>10} "
            f"{stats.cached_bytes / 1024:>9.1f}  {result.answer_text[:40]}"
        )

    index = engine.prefix_cache
    print(
        f"\nprefix index: {index.stats.n_hit_blocks} page hits / "
        f"{index.stats.n_hit_blocks + index.stats.n_missed_blocks} lookups "
        f"({index.stats.hit_rate:.0%} hit-rate), "
        f"{index.stats.saved_bytes / 1024:.1f} KiB of prefill storage reused, "
        f"{index.n_blocks} pages retained for future traffic"
    )
    print(
        f"shared KV pool: peak {engine.pool.peak_allocated_blocks} pages, "
        f"{engine.pool.n_cow_copies} copy-on-write forks"
    )


if __name__ == "__main__":
    main()

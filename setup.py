"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs also work on
older tooling stacks (e.g. ``pip install -e . --no-use-pep517`` in offline
environments without the ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Cocktail: chunk-adaptive mixed-precision KV cache quantization for "
        "long-context LLM inference (DATE 2025 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
